#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "driver/deck.hpp"
#include "driver/decks.hpp"
#include "driver/sweep.hpp"
#include "model/machine.hpp"
#include "model/scaling.hpp"
#include "model/trace.hpp"
#include "solvers/solver.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"

#if defined(TEALEAF_HAVE_OPENMP)
#include <omp.h>
#endif

namespace tealeaf {
namespace {

using testing::make_test_problem;
using testing::make_test_problem_3d;
using testing::max_field_diff;

// ---- chain_block_reach (the pipelined schedule's dependency window) ------

TEST(ChainBlockReach, StencilReachIsOneBlockIn2D) {
  auto cl = make_test_problem(24, 2, 2);
  const Chunk& c = cl->chunk(0);
  const Bounds b = interior_bounds(c);
  // The 5-point stencil only reads the k±1 rows: one block, whatever the
  // tile height (including untiled, where the chunk is a single block).
  for (const int tile : {0, 1, 3, 5, 100}) {
    EXPECT_EQ(SimCluster2D::chain_block_reach(c, b, tile), 1)
        << "tile=" << tile;
  }
}

TEST(ChainBlockReach, StencilReachIsOnePlaneIn3D) {
  auto cl = make_test_problem_3d(12, 2, 2);
  const Chunk& c = cl->chunk(0);
  const Bounds b = interior_bounds(c);
  // The 7-point stencil reads the l±1 planes: per_plane blocks away in
  // the flattened (plane, k-block) grid — the cross-plane lag.
  for (const int tile : {1, 2, 5}) {
    const int per_plane =
        SimCluster2D::num_row_tiles(b.khi - b.klo, tile);
    EXPECT_EQ(SimCluster2D::chain_block_reach(c, b, tile),
              std::max(1, per_plane))
        << "tile=" << tile;
  }
}

// ---- whole-solver pipelined-vs-fused equivalence -------------------------

struct PipelinedCase {
  SolverType type;
  PreconType precon;
  int halo_depth;
  int tile_rows;
  int dims = 2;
  // Assembled cases run the chains over the CSR / SELL-C-σ SpMV paths,
  // where the dependency reach comes from row_reach instead of the
  // stencil radius.
  OperatorKind op = OperatorKind::kStencil;
};

class PipelinedEngineEquivalence
    : public ::testing::TestWithParam<PipelinedCase> {};

TEST_P(PipelinedEngineEquivalence, BitwiseIdenticalToUntiledFused) {
  const PipelinedCase tc = GetParam();
  SolverConfig cfg;
  cfg.type = tc.type;
  cfg.precon = tc.precon;
  cfg.halo_depth = tc.halo_depth;
  cfg.fuse_kernels = true;
  cfg.op = tc.op;
  cfg.eps = (tc.type == SolverType::kJacobi) ? 1e-5 : 1e-10;
  cfg.max_iters = (tc.type == SolverType::kJacobi) ? 100000 : 10000;

  const int halo = std::max(2, tc.halo_depth);
  auto make = [&] {
    return tc.dims == 3 ? make_test_problem_3d(16, 2, halo)
                        : make_test_problem(32, 4, halo, 8.0);
  };
  auto a = make();
  auto b = make();
  testing::install_operator(*a, tc.op);
  testing::install_operator(*b, tc.op);
  SolverConfig pipe_cfg = cfg;
  pipe_cfg.tile_rows = tc.tile_rows;
  pipe_cfg.pipeline = true;
  const SolveStats su = run_solver(*a, cfg);
  const SolveStats sp = run_solver(*b, pipe_cfg);

  ASSERT_TRUE(su.converged);
  ASSERT_TRUE(sp.converged);
  // The pipelined engine only reorders row-block tasks within the
  // dependency window: per-row arithmetic and the row/rank-ordered
  // reductions are shared with the fused path, so everything must match
  // exactly — in 3-D including the plane-lagged edge schedule.
  EXPECT_EQ(sp.outer_iters, su.outer_iters);
  EXPECT_EQ(sp.inner_steps, su.inner_steps);
  EXPECT_EQ(sp.spmv_applies, su.spmv_applies);
  EXPECT_EQ(sp.eigen_cg_iters, su.eigen_cg_iters);
  EXPECT_EQ(sp.initial_norm, su.initial_norm);
  EXPECT_EQ(sp.final_norm, su.final_norm);
  EXPECT_EQ(max_field_diff(*a, *b, FieldId::kU), 0.0);

  // Pipelining changes the schedule, never the data motion.
  EXPECT_EQ(a->stats().exchange_calls, b->stats().exchange_calls);
  EXPECT_EQ(a->stats().messages, b->stats().messages);
  EXPECT_EQ(a->stats().message_bytes, b->stats().message_bytes);
  EXPECT_EQ(a->stats().reductions, b->stats().reductions);
}

INSTANTIATE_TEST_SUITE_P(
    AllSolversAndSchedules, PipelinedEngineEquivalence,
    ::testing::Values(
        // Jacobi: the save+update chain, incl. one-row blocks and
        // non-dividing heights; block-Jacobi has no pipelined form and
        // must fall back cleanly.
        PipelinedCase{SolverType::kJacobi, PreconType::kNone, 1, 1},
        PipelinedCase{SolverType::kJacobi, PreconType::kNone, 1, 7},
        PipelinedCase{SolverType::kJacobi, PreconType::kNone, 1, 0},
        // CG ignores the knob (no chainable kernel pair) — trivially
        // identical, but the dispatch must stay clean.
        PipelinedCase{SolverType::kCG, PreconType::kNone, 1, 7},
        PipelinedCase{SolverType::kCG, PreconType::kJacobiBlock, 1, 5},
        // Chebyshev: the iterate+residual pair, with and without the
        // diagonal preconditioner; block-Jacobi falls back.
        PipelinedCase{SolverType::kChebyshev, PreconType::kNone, 1, 5},
        PipelinedCase{SolverType::kChebyshev, PreconType::kJacobiDiag, 1, 4},
        PipelinedCase{SolverType::kChebyshev, PreconType::kJacobiBlock, 1, 5},
        // PPCG: depth-1 runs one-stage chains; depth-4 chains up to four
        // Chebyshev steps between matrix-powers exchanges (the clipped
        // shrinking-bounds schedule).
        PipelinedCase{SolverType::kPPCG, PreconType::kNone, 1, 5},
        PipelinedCase{SolverType::kPPCG, PreconType::kJacobiDiag, 1, 3},
        PipelinedCase{SolverType::kPPCG, PreconType::kNone, 4, 5},
        PipelinedCase{SolverType::kPPCG, PreconType::kNone, 4, 0},
        PipelinedCase{SolverType::kPPCG, PreconType::kJacobiDiag, 4, 1},
        // Block-Jacobi (no pipelined form) must fall back cleanly; it is
        // incompatible with matrix powers, so depth 1 only.
        PipelinedCase{SolverType::kPPCG, PreconType::kJacobiBlock, 1, 5},
        // Assembled operators: chained row-blocks over CSR / SELL-C-σ.
        PipelinedCase{SolverType::kJacobi, PreconType::kNone, 1, 3, 2,
                      OperatorKind::kCsr},
        PipelinedCase{SolverType::kChebyshev, PreconType::kNone, 1, 4, 2,
                      OperatorKind::kCsr},
        PipelinedCase{SolverType::kPPCG, PreconType::kJacobiDiag, 1, 5, 2,
                      OperatorKind::kCsr},
        PipelinedCase{SolverType::kChebyshev, PreconType::kJacobiDiag, 1, 5,
                      2, OperatorKind::kSellCSigma},
        PipelinedCase{SolverType::kPPCG, PreconType::kNone, 1, 1000, 2,
                      OperatorKind::kSellCSigma},
        // 3-D: the plane-lagged schedule replaces the tiled engine's
        // post-barrier edge pass, at several tile heights (different
        // per-plane block counts → different lags).
        PipelinedCase{SolverType::kJacobi, PreconType::kNone, 1, 1, 3},
        PipelinedCase{SolverType::kJacobi, PreconType::kNone, 1, 3, 3},
        PipelinedCase{SolverType::kJacobi, PreconType::kNone, 1, 0, 3},
        PipelinedCase{SolverType::kChebyshev, PreconType::kNone, 1, 5, 3},
        PipelinedCase{SolverType::kChebyshev, PreconType::kJacobiDiag, 1, 2,
                      3},
        PipelinedCase{SolverType::kPPCG, PreconType::kNone, 1, 3, 3},
        PipelinedCase{SolverType::kPPCG, PreconType::kNone, 4, 2, 3},
        PipelinedCase{SolverType::kPPCG, PreconType::kJacobiDiag, 4, 5, 3},
        // 3-D assembled: row_reach spans whole planes.
        PipelinedCase{SolverType::kChebyshev, PreconType::kNone, 1, 3, 3,
                      OperatorKind::kCsr},
        PipelinedCase{SolverType::kPPCG, PreconType::kNone, 1, 2, 3,
                      OperatorKind::kSellCSigma}),
    [](const auto& info) {
      const PipelinedCase& tc = info.param;
      std::string name = std::string(to_string(tc.type)) + "_" +
                         to_string(tc.precon) + "_d" +
                         std::to_string(tc.halo_depth) + "_b" +
                         std::to_string(tc.tile_rows);
      if (tc.dims == 3) name += "_3d";
      if (tc.op == OperatorKind::kCsr) name += "_csr";
      if (tc.op == OperatorKind::kSellCSigma) name += "_sell";
      return name;
    });

// ---- oversubscribed teams: the tick protocol engages ---------------------

TEST(PipelinedScheduling, MoreThreadsThanRanksStaysBitwiseIdentical) {
#if defined(TEALEAF_HAVE_OPENMP)
  // Reference on the current thread count, then rerun pipelined with the
  // team oversubscribed past the rank count, so row-blocks of one rank
  // spread over several threads and the cross-thread tick waits engage —
  // PPCG at depth 4 runs multi-stage chains through them.
  SolverConfig cfg;
  cfg.type = SolverType::kPPCG;
  cfg.halo_depth = 4;
  cfg.fuse_kernels = true;
  cfg.eps = 1e-10;

  auto a = make_test_problem(32, 2, 4, 8.0);
  const SolveStats su = run_solver(*a, cfg);
  ASSERT_TRUE(su.converged);

  const int saved = omp_get_max_threads();
  omp_set_num_threads(5);  // > 2 ranks → flat (rank, block) ownership
  auto b = make_test_problem(32, 2, 4, 8.0);
  SolverConfig pipe = cfg;
  pipe.tile_rows = 3;
  pipe.pipeline = true;
  const SolveStats sp = run_solver(*b, pipe);
  omp_set_num_threads(saved);

  ASSERT_TRUE(sp.converged);
  EXPECT_EQ(sp.outer_iters, su.outer_iters);
  EXPECT_EQ(sp.inner_steps, su.inner_steps);
  EXPECT_EQ(sp.final_norm, su.final_norm);
  EXPECT_EQ(max_field_diff(*a, *b, FieldId::kU), 0.0);
#else
  GTEST_SKIP() << "OpenMP disabled: the team never exceeds one thread";
#endif
}

TEST(PipelinedScheduling, PlaneLagSurvivesOversubscriptionIn3D) {
#if defined(TEALEAF_HAVE_OPENMP)
  // 3-D Jacobi: the edge pass of plane l waits on plane l±1's save —
  // reach R = per_plane blocks.  Oversubscribe so those waits cross
  // threads, at a tile height that does not divide the plane rows.
  SolverConfig cfg;
  cfg.type = SolverType::kJacobi;
  cfg.fuse_kernels = true;
  cfg.eps = 1e-5;
  cfg.max_iters = 100000;

  auto a = make_test_problem_3d(12, 2, 2);
  const SolveStats su = run_solver(*a, cfg);
  ASSERT_TRUE(su.converged);

  const int saved = omp_get_max_threads();
  omp_set_num_threads(5);
  auto b = make_test_problem_3d(12, 2, 2);
  SolverConfig pipe = cfg;
  pipe.tile_rows = 5;  // 12 rows → 3 blocks/plane, last one short
  pipe.pipeline = true;
  const SolveStats sp = run_solver(*b, pipe);
  omp_set_num_threads(saved);

  ASSERT_TRUE(sp.converged);
  EXPECT_EQ(sp.outer_iters, su.outer_iters);
  EXPECT_EQ(sp.final_norm, su.final_norm);
  EXPECT_EQ(max_field_diff(*a, *b, FieldId::kU), 0.0);
#else
  GTEST_SKIP() << "OpenMP disabled: the team never exceeds one thread";
#endif
}

// ---- config validation ---------------------------------------------------

TEST(PipelineConfig, RequiresTheFusedEngine) {
  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  cfg.pipeline = true;
  cfg.fuse_kernels = false;
  EXPECT_THROW((void)cfg.validated(), TeaError);
  cfg.fuse_kernels = true;
  EXPECT_NO_THROW((void)cfg.validated());
}

// ---- sweep tenth axis ----------------------------------------------------

TEST(SweepPipelineAxis, EnumeratesAsInnermostAxis) {
  SweepSpec spec;
  spec.solvers = {"cg"};
  spec.fused = {0, 1};
  spec.tile_rows = {0, 8};
  spec.pipeline = {0, 1};
  const std::vector<SweepCase> cases = enumerate_cases(spec, 16);
  ASSERT_EQ(cases.size(), 8u);
  ASSERT_EQ(spec.num_cases(), 8u);
  EXPECT_EQ(cases[0].label(), "cg/none/d1/n16/t0");
  EXPECT_EQ(cases[1].label(), "cg/none/d1/n16/t0/pipe");
  EXPECT_EQ(cases[2].label(), "cg/none/d1/n16/t0/b8");
  EXPECT_EQ(cases[3].label(), "cg/none/d1/n16/t0/b8/pipe");
  EXPECT_EQ(cases[4].label(), "cg/none/d1/n16/t0/fused");
  EXPECT_EQ(cases[5].label(), "cg/none/d1/n16/t0/fused/pipe");
  EXPECT_EQ(cases[6].label(), "cg/none/d1/n16/t0/fused/b8");
  EXPECT_EQ(cases[7].label(), "cg/none/d1/n16/t0/fused/b8/pipe");
  spec.pipeline = {2};
  EXPECT_THROW(spec.validate(), TeaError);
}

TEST(SweepPipelineAxis, PipelinedCellsMatchFusedAndRoundTrip) {
  InputDeck base = decks::hot_block(16, 1);
  base.solver.eps = 1e-8;
  SweepSpec spec;
  spec.solvers = {"chebyshev", "mg-pcg"};
  spec.fused = {0, 1};
  spec.pipeline = {0, 1};
  spec.ranks = 2;
  const SweepReport rep = run_sweep(base, spec);
  ASSERT_EQ(rep.cells.size(), 8u);

  // chebyshev: unfused, unfused/pipe (skipped), fused, fused/pipe.
  EXPECT_FALSE(rep.cells[0].skipped);
  EXPECT_TRUE(rep.cells[1].skipped);  // pipelining needs the fused engine
  EXPECT_FALSE(rep.cells[2].skipped);
  EXPECT_FALSE(rep.cells[3].skipped);
  EXPECT_TRUE(rep.cells[3].config.pipeline);
  EXPECT_TRUE(rep.cells[3].converged);
  EXPECT_EQ(rep.cells[3].iterations, rep.cells[2].iterations);
  EXPECT_EQ(rep.cells[3].final_norm, rep.cells[2].final_norm);
  EXPECT_EQ(rep.cells[3].message_bytes, rep.cells[2].message_bytes);

  // mg-pcg's fused path does not pipeline: both pipe cells are skipped.
  EXPECT_FALSE(rep.cells[4].skipped);
  EXPECT_TRUE(rep.cells[5].skipped);
  EXPECT_FALSE(rep.cells[6].skipped);
  EXPECT_TRUE(rep.cells[7].skipped);

  // The pipeline column survives both serialisation round trips.
  const SweepReport csv_back =
      SweepReport::from_csv_lines(rep.to_csv_lines());
  const SweepReport json_back =
      SweepReport::from_json_string(rep.to_json().dump(2));
  for (std::size_t i = 0; i < rep.cells.size(); ++i) {
    EXPECT_EQ(csv_back.cells[i].config.pipeline,
              rep.cells[i].config.pipeline);
    EXPECT_EQ(json_back.cells[i].config.pipeline,
              rep.cells[i].config.pipeline);
    EXPECT_EQ(csv_back.cells[i].config.label(),
              rep.cells[i].config.label());
  }
}

// ---- deck knobs ----------------------------------------------------------

TEST(PipelineDeck, KnobsParseAndRoundTrip) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\nx_cells=16\ny_cells=16\nend_step=1\n"
      "tl_fuse_kernels\ntl_pipeline\n"
      "sweep_solvers=chebyshev\nsweep_pipeline=0,1\n"
      "state 1 density=1.0 energy=1.0\n*endtea\n");
  EXPECT_TRUE(deck.solver.pipeline);
  EXPECT_EQ(deck.sweep.pipeline, (std::vector<int>{0, 1}));
  const InputDeck back = InputDeck::parse_string(deck.to_string());
  EXPECT_TRUE(back.solver.pipeline);
  EXPECT_EQ(back.sweep.pipeline, deck.sweep.pipeline);
}

// ---- scaling model: chained-bytes variant --------------------------------

TEST(PipelinedModel, ChainedBytesUndercutBlockedForCacheFittingTiles) {
  SolverConfig cfg;
  cfg.type = SolverType::kJacobi;
  SolveStats stats;
  stats.outer_iters = 200;
  SolverRunSummary run = SolverRunSummary::from(cfg, stats, 1024);
  const GlobalMesh2D mesh(1024, 1024);
  const ScalingModel model(machines::spruce_hybrid(), mesh, 1);

  const double untiled = model.run_seconds(run, 1);
  run.tile_rows = 4;  // fits the modelled L2 → blocked variant applies
  const double blocked = model.run_seconds(run, 1);
  run.pipeline = true;
  const double chained = model.run_seconds(run, 1);
  EXPECT_LT(chained, blocked);
  EXPECT_LT(blocked, untiled);

  // Pipelining without a cache-fitting block prices as streaming: the
  // chain saves a traversal only when the block is still L2-resident.
  run.tile_rows = 4096;
  EXPECT_EQ(model.run_seconds(run, 1), untiled);
  run.tile_rows = 0;
  EXPECT_EQ(model.run_seconds(run, 1), untiled);
}

TEST(PipelinedModel, SummaryRecordsEffectivePipelining) {
  // An unfused config never pipelines, whatever the knob says — the
  // summary must record the engine that actually ran.
  SolverConfig cfg;
  cfg.type = SolverType::kJacobi;
  cfg.pipeline = true;
  cfg.fuse_kernels = false;
  SolveStats stats;
  stats.outer_iters = 100;
  EXPECT_FALSE(SolverRunSummary::from(cfg, stats, 256).pipeline);
  cfg.fuse_kernels = true;
  EXPECT_TRUE(SolverRunSummary::from(cfg, stats, 256).pipeline);
}

}  // namespace
}  // namespace tealeaf
