#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "driver/decks.hpp"
#include "driver/tealeaf_app.hpp"
#include "ops/kernels.hpp"
#include "solvers/cg.hpp"
#include "solvers/solver.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"

namespace tealeaf {
namespace {

using testing::install_operator;
using testing::make_test_problem;
using testing::max_field_diff;

// ---- Team / parallel_region primitives ----------------------------------

TEST(Team, ForRangeCoversEveryIndexExactlyOnce) {
  const int n = 1237;
  std::vector<int> hits(n, 0);
  parallel_region([&](Team& t) {
    ASSERT_GE(t.num_threads(), 1);
    ASSERT_LT(t.thread_id(), t.num_threads());
    t.for_range(0, n, [&](std::int64_t i) { ++hits[i]; });
  });
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(Team, ForRangeMappingIsStableAcrossCalls) {
  // The same range must land on the same thread every call — the property
  // NUMA first-touch placement relies on.
  const int n = 57;
  std::vector<int> owner_a(n, -1), owner_b(n, -1);
  parallel_region([&](Team& t) {
    t.for_range(0, n, [&](std::int64_t i) { owner_a[i] = t.thread_id(); });
    t.barrier();
    t.for_range(0, n, [&](std::int64_t i) { owner_b[i] = t.thread_id(); });
  });
  EXPECT_EQ(owner_a, owner_b);
}

TEST(Team, BarrierOrdersPhases) {
  const int n = 512;
  std::vector<double> a(n, 0.0), b(n, 0.0);
  parallel_region([&](Team& t) {
    t.for_range(0, n, [&](std::int64_t i) { a[i] = 2.0 * i; });
    t.barrier();
    // Reversed read: almost always crosses thread-block boundaries.
    t.for_range(0, n, [&](std::int64_t i) { b[i] = a[n - 1 - i]; });
  });
  for (int i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(b[i], 2.0 * (n - 1 - i));
  }
}

TEST(Team, SingleRunsOnThreadZeroOnly) {
  int runs = 0;
  parallel_region([&](Team& t) {
    t.single([&] { ++runs; });
    t.barrier();
  });
  EXPECT_EQ(runs, 1);
}

TEST(TeamCluster, SumOverChunksMatchesStandaloneBitwise) {
  auto cl = make_test_problem(24, 5, 2);
  const double serial = cl->sum_over_chunks(
      [](int, const Chunk2D& c) { return kernels::norm2_sq(c, FieldId::kU); });
  cl->reset_stats();
  double team_total = 0.0;
  parallel_region([&](Team& t) {
    const double v = cl->sum_over_chunks(&t, [](int, const Chunk2D& c) {
      return kernels::norm2_sq(c, FieldId::kU);
    });
    t.single([&] { team_total = v; });
  });
  EXPECT_EQ(team_total, serial);  // rank-ordered partials: bitwise equal
  EXPECT_EQ(cl->stats().reductions, 1);
}

TEST(TeamCluster, TeamExchangeMatchesStandalone) {
  auto a = make_test_problem(32, 6, 3);
  auto b = make_test_problem(32, 6, 3);
  a->exchange({FieldId::kU, FieldId::kDensity}, 3);
  parallel_region([&](Team& t) {
    b->exchange(&t, {FieldId::kU, FieldId::kDensity}, 3);
  });
  for (int r = 0; r < a->nranks(); ++r) {
    const Chunk2D& ca = a->chunk(r);
    const Chunk2D& cb = b->chunk(r);
    for (int k = -3; k < ca.ny() + 3; ++k) {
      for (int j = -3; j < ca.nx() + 3; ++j) {
        ASSERT_EQ(ca.u()(j, k), cb.u()(j, k)) << r << " " << j << " " << k;
      }
    }
  }
  EXPECT_EQ(a->stats().messages, b->stats().messages);
  EXPECT_EQ(a->stats().message_bytes, b->stats().message_bytes);
  EXPECT_EQ(a->stats().exchange_calls, b->stats().exchange_calls);
}

// ---- fused kernels: single-pass vs composed sweeps ----------------------

TEST(FusedKernels, ChebyStepMatchesSmvpPlusUpdate) {
  for (const bool diag : {false, true}) {
    auto a = make_test_problem(28, 2, 3);
    auto b = make_test_problem(28, 2, 3);
    for (auto* cl : {a.get(), b.get()}) {
      cl->for_each_chunk([](int r, Chunk2D& c) {
        for (int k = -3; k < c.ny() + 3; ++k)
          for (int j = -3; j < c.nx() + 3; ++j) {
            c.sd()(j, k) = 0.01 * (j + 2 * k) + r;
            c.rtemp()(j, k) = 0.5 - 0.003 * j * k;
            c.z()(j, k) = 0.25 * j;
          }
      });
    }
    const double alpha = 0.37, beta = 1.21;
    a->for_each_chunk([&](int, Chunk2D& c) {
      const Bounds bb = extended_bounds(c, 2);
      kernels::smvp(c, FieldId::kSd, FieldId::kW, bb);
      kernels::cheby_fused_update(c, FieldId::kRtemp, FieldId::kSd,
                                  FieldId::kZ, alpha, beta, diag, bb);
    });
    b->for_each_chunk([&](int, Chunk2D& c) {
      kernels::cheby_step(c, FieldId::kRtemp, FieldId::kSd, FieldId::kZ,
                          alpha, beta, diag, extended_bounds(c, 2));
    });
    for (const FieldId f :
         {FieldId::kRtemp, FieldId::kSd, FieldId::kZ, FieldId::kW}) {
      EXPECT_EQ(max_field_diff(*a, *b, f), 0.0) << "diag=" << diag;
    }
  }
}

TEST(FusedKernels, CalcUrDotMatchesComposedSweeps) {
  for (const PreconType precon :
       {PreconType::kNone, PreconType::kJacobiDiag, PreconType::kJacobiBlock}) {
    auto a = make_test_problem(20, 2, 2);
    auto b = make_test_problem(20, 2, 2);
    for (auto* cl : {a.get(), b.get()}) {
      cg_setup(*cl, precon);
      cl->exchange({FieldId::kP}, 1);
      cl->for_each_chunk([](int, Chunk2D& c) {
        kernels::smvp(c, FieldId::kP, FieldId::kW, interior_bounds(c));
      });
    }
    const double alpha = 0.61;
    const double unfused = a->sum_over_chunks([&](int, Chunk2D& c) {
      kernels::cg_calc_ur(c, alpha);
      if (precon == PreconType::kNone) {
        return kernels::norm2_sq(c, FieldId::kR);
      }
      kernels::apply_preconditioner(c, precon, FieldId::kR, FieldId::kZ);
      return kernels::dot(c, FieldId::kR, FieldId::kZ);
    });
    const double fused = b->sum_over_chunks([&](int, Chunk2D& c) {
      return kernels::calc_ur_dot(c, alpha, precon);
    });
    EXPECT_EQ(fused, unfused) << to_string(precon);
    for (const FieldId f : {FieldId::kU, FieldId::kR}) {
      EXPECT_EQ(max_field_diff(*a, *b, f), 0.0) << to_string(precon);
    }
  }
}

// ---- fused vs unfused whole-solver property test ------------------------

struct EngineCase {
  SolverType type;
  PreconType precon;
  int halo_depth;
  bool chrono;  // fuse_cg_reductions (CG only)
  // Both configs share the operator kind, so assembled cases check the
  // fused ≡ unfused contract on the CSR / SELL-C-σ SpMV paths too.
  OperatorKind op = OperatorKind::kStencil;
};

class FusedEngineEquivalence : public ::testing::TestWithParam<EngineCase> {};

TEST_P(FusedEngineEquivalence, SameIterationsResidualsAndCommStats) {
  const EngineCase ec = GetParam();
  SolverConfig cfg;
  cfg.type = ec.type;
  cfg.precon = ec.precon;
  cfg.halo_depth = ec.halo_depth;
  cfg.fuse_cg_reductions = ec.chrono;
  cfg.op = ec.op;
  cfg.eps = (ec.type == SolverType::kJacobi) ? 1e-5 : 1e-10;
  cfg.max_iters = (ec.type == SolverType::kJacobi) ? 100000 : 10000;

  auto a = make_test_problem(32, 4, std::max(2, ec.halo_depth), 8.0);
  auto b = make_test_problem(32, 4, std::max(2, ec.halo_depth), 8.0);
  install_operator(*a, ec.op);
  install_operator(*b, ec.op);
  SolverConfig fused_cfg = cfg;
  fused_cfg.fuse_kernels = true;
  const SolveStats su = run_solver(*a, cfg);
  const SolveStats sf = run_solver(*b, fused_cfg);

  ASSERT_TRUE(su.converged);
  ASSERT_TRUE(sf.converged);
  // The fused engine reorders nothing: per-rank kernels do the same
  // per-cell arithmetic in the same order and reductions sum the same
  // rank-ordered partials, so iteration counts must match exactly and
  // residuals to a tight ULP tolerance.
  EXPECT_EQ(sf.outer_iters, su.outer_iters);
  EXPECT_EQ(sf.inner_steps, su.inner_steps);
  EXPECT_EQ(sf.spmv_applies, su.spmv_applies);
  EXPECT_EQ(sf.eigen_cg_iters, su.eigen_cg_iters);
  EXPECT_NEAR(sf.final_norm, su.final_norm,
              4e-15 * std::max(1.0, su.final_norm));
  EXPECT_NEAR(sf.initial_norm, su.initial_norm, 4e-15 * su.initial_norm);
  const double uscale = std::fabs(a->chunk(0).u()(0, 0)) + 1.0;
  EXPECT_LT(max_field_diff(*a, *b, FieldId::kU), 1e-12 * uscale);

  // Same communication: the engine changes where the fork/join happens,
  // not what travels.
  EXPECT_EQ(a->stats().exchange_calls, b->stats().exchange_calls);
  EXPECT_EQ(a->stats().messages, b->stats().messages);
  EXPECT_EQ(a->stats().message_bytes, b->stats().message_bytes);
  EXPECT_EQ(a->stats().reductions, b->stats().reductions);
}

INSTANTIATE_TEST_SUITE_P(
    AllSolversAndPrecons, FusedEngineEquivalence,
    ::testing::Values(
        EngineCase{SolverType::kJacobi, PreconType::kNone, 1, false},
        EngineCase{SolverType::kCG, PreconType::kNone, 1, false},
        EngineCase{SolverType::kCG, PreconType::kJacobiDiag, 1, false},
        EngineCase{SolverType::kCG, PreconType::kJacobiBlock, 1, false},
        EngineCase{SolverType::kCG, PreconType::kNone, 1, true},
        EngineCase{SolverType::kCG, PreconType::kJacobiDiag, 1, true},
        EngineCase{SolverType::kCG, PreconType::kJacobiBlock, 1, true},
        EngineCase{SolverType::kChebyshev, PreconType::kNone, 1, false},
        EngineCase{SolverType::kChebyshev, PreconType::kJacobiDiag, 1, false},
        EngineCase{SolverType::kChebyshev, PreconType::kJacobiBlock, 1,
                   false},
        EngineCase{SolverType::kPPCG, PreconType::kNone, 1, false},
        EngineCase{SolverType::kPPCG, PreconType::kJacobiDiag, 1, false},
        EngineCase{SolverType::kPPCG, PreconType::kJacobiBlock, 1, false},
        EngineCase{SolverType::kPPCG, PreconType::kNone, 4, false},
        EngineCase{SolverType::kPPCG, PreconType::kJacobiDiag, 4, false},
        // Assembled operators (CSR / SELL-C-σ, halo depth 1 by contract):
        // the same fused ≡ unfused guarantee holds on the SpMV-from-matrix
        // paths for every solver family and preconditioner.
        EngineCase{SolverType::kJacobi, PreconType::kNone, 1, false,
                   OperatorKind::kCsr},
        EngineCase{SolverType::kCG, PreconType::kNone, 1, false,
                   OperatorKind::kCsr},
        EngineCase{SolverType::kCG, PreconType::kJacobiBlock, 1, false,
                   OperatorKind::kCsr},
        EngineCase{SolverType::kCG, PreconType::kJacobiDiag, 1, true,
                   OperatorKind::kCsr},
        EngineCase{SolverType::kChebyshev, PreconType::kJacobiDiag, 1, false,
                   OperatorKind::kCsr},
        EngineCase{SolverType::kPPCG, PreconType::kNone, 1, false,
                   OperatorKind::kCsr},
        EngineCase{SolverType::kCG, PreconType::kNone, 1, false,
                   OperatorKind::kSellCSigma},
        EngineCase{SolverType::kCG, PreconType::kJacobiBlock, 1, false,
                   OperatorKind::kSellCSigma},
        EngineCase{SolverType::kChebyshev, PreconType::kNone, 1, false,
                   OperatorKind::kSellCSigma},
        EngineCase{SolverType::kPPCG, PreconType::kJacobiDiag, 1, false,
                   OperatorKind::kSellCSigma}),
    [](const auto& info) {
      const EngineCase& ec = info.param;
      std::string name = std::string(to_string(ec.type)) + "_" +
                         to_string(ec.precon) + "_d" +
                         std::to_string(ec.halo_depth);
      if (ec.chrono) name += "_chrono";
      if (ec.op == OperatorKind::kCsr) name += "_csr";
      if (ec.op == OperatorKind::kSellCSigma) name += "_sell";
      return name;
    });

// ---- breakdown reporting ------------------------------------------------

TEST(Breakdown, CgIterationReportsInsteadOfThrowingWhenFlagged) {
  auto cl = make_test_problem(16, 2, 2);
  const double rro = cg_setup(*cl, PreconType::kNone);
  ASSERT_GT(rro, 0.0);
  // Doctor the state: p = 0 makes ⟨p, A·p⟩ = 0, the classic breakdown.
  cl->for_each_chunk([](int, Chunk2D& c) {
    c.p().fill(0.0);
  });
  bool broke = false;
  const double rrn =
      cg_iteration(*cl, PreconType::kNone, rro, nullptr, &broke);
  EXPECT_TRUE(broke);
  EXPECT_EQ(rrn, rro);  // state untouched, metric handed back

  // Without the flag the contract-violation behaviour is preserved.
  cl->for_each_chunk([](int, Chunk2D& c) { c.p().fill(0.0); });
  EXPECT_THROW(cg_iteration(*cl, PreconType::kNone, rro, nullptr), TeaError);
}

/// PPCG configuration that reliably breaks down: two eigenvalue presteps
/// grossly underestimate the spectrum of a stiff problem, and an odd
/// polynomial degree makes the Chebyshev preconditioner negative beyond
/// the estimated window, so ⟨r, M⁻¹r⟩ goes negative within a couple of
/// outer iterations.
InputDeck breakdown_deck() {
  InputDeck deck = decks::crooked_pipe(32, 1);
  deck.initial_timestep *= 1000.0;
  deck.solver.type = SolverType::kPPCG;
  deck.solver.eigen_cg_iters = 2;
  deck.solver.inner_steps = 11;
  deck.solver.eps = 1e-10;
  deck.solver.max_iters = 200;
  return deck;
}

TEST(Breakdown, PPCGReportsIndefinitePolynomialPreconditioner) {
  for (const bool fused : {false, true}) {
    InputDeck deck = breakdown_deck();
    deck.solver.fuse_kernels = fused;
    TeaLeafApp app(deck, 2);
    const SolveStats st = app.step();
    EXPECT_TRUE(st.breakdown) << "fused=" << fused;
    EXPECT_FALSE(st.converged) << "fused=" << fused;
    EXPECT_FALSE(st.breakdown_reason.empty()) << "fused=" << fused;
    // Breakdown is detected within a few outer iterations, not after
    // burning the whole iteration budget on a diverging solve.
    EXPECT_LT(st.outer_iters - st.eigen_cg_iters, 10) << "fused=" << fused;
  }
}

}  // namespace
}  // namespace tealeaf
