#include <gtest/gtest.h>

#include "comm/sim_comm.hpp"
#include "ops/kernels.hpp"
#include "precon/preconditioner.hpp"
#include "util/numeric.hpp"

namespace tealeaf {
namespace {

class PreconFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cl_ = std::make_unique<SimCluster2D>(GlobalMesh2D(10, 11), 1, 2);
    Chunk2D& c = cl_->chunk(0);
    SplitMix64 rng(5150);
    c.density().fill(1.0);
    for (int k = -2; k < c.ny() + 2; ++k)
      for (int j = -2; j < c.nx() + 2; ++j)
        c.density()(j, k) = rng.next_double(0.2, 5.0);
    kernels::init_conduction(c, kernels::Coefficient::kConductivity, 0.9,
                             1.1);
    kernels::block_jacobi_init(c);
    auto& r = c.r();
    r.fill(0.0);
    for (int k = 0; k < c.ny(); ++k)
      for (int j = 0; j < c.nx(); ++j) r(j, k) = rng.next_double(-2.0, 2.0);
  }

  /// Apply the block-diagonal matrix M (the truncated tridiagonal strips)
  /// to a field — the forward operator for checking M·(M⁻¹r) = r.
  double apply_block_matrix(const Chunk2D& c, const Field2D<double>& x,
                            int j, int k) const {
    const auto& ky = c.ky();
    const int k0 = (k / kJacBlockSize) * kJacBlockSize;
    const int k1 = std::min(k0 + kJacBlockSize, c.ny());
    double acc = kernels::diag_at(c, j, k) * x(j, k);
    if (k > k0) acc -= ky(j, k) * x(j, k - 1);
    if (k < k1 - 1) acc -= ky(j, k + 1) * x(j, k + 1);
    return acc;
  }

  std::unique_ptr<SimCluster2D> cl_;
};

TEST_F(PreconFixture, DiagSolveDividesByDiagonal) {
  Chunk2D& c = cl_->chunk(0);
  kernels::diag_solve(c, FieldId::kR, FieldId::kZ, interior_bounds(c));
  for (int k = 0; k < c.ny(); ++k)
    for (int j = 0; j < c.nx(); ++j)
      EXPECT_NEAR(c.z()(j, k) * kernels::diag_at(c, j, k), c.r()(j, k),
                  1e-13);
}

TEST_F(PreconFixture, BlockSolveInvertsBlockMatrix) {
  Chunk2D& c = cl_->chunk(0);
  kernels::block_jacobi_solve(c, FieldId::kR, FieldId::kZ);
  // ny = 11: strips of 4,4,3 — the truncated strip is exercised too.
  for (int k = 0; k < c.ny(); ++k)
    for (int j = 0; j < c.nx(); ++j)
      EXPECT_NEAR(apply_block_matrix(c, c.z(), j, k), c.r()(j, k), 1e-12);
}

TEST_F(PreconFixture, BlockSolveIsSymmetric) {
  // M⁻¹ must be symmetric for CG: ⟨M⁻¹a, b⟩ = ⟨a, M⁻¹b⟩.
  Chunk2D& c = cl_->chunk(0);
  SplitMix64 rng(11);
  auto& a = c.p();
  auto& b = c.w();
  a.fill(0.0);
  b.fill(0.0);
  for (int k = 0; k < c.ny(); ++k) {
    for (int j = 0; j < c.nx(); ++j) {
      a(j, k) = rng.next_double(-1.0, 1.0);
      b(j, k) = rng.next_double(-1.0, 1.0);
    }
  }
  kernels::block_jacobi_solve(c, FieldId::kP, FieldId::kZ);  // z = M⁻¹a
  const double ma_b = kernels::dot(c, FieldId::kZ, FieldId::kW);
  kernels::block_jacobi_solve(c, FieldId::kW, FieldId::kZ);  // z = M⁻¹b
  const double a_mb = kernels::dot(c, FieldId::kP, FieldId::kZ);
  EXPECT_NEAR(ma_b, a_mb, 1e-11 * std::max(1.0, std::fabs(ma_b)));
}

TEST_F(PreconFixture, BlockSolveIsPositiveDefinite) {
  Chunk2D& c = cl_->chunk(0);
  kernels::block_jacobi_solve(c, FieldId::kR, FieldId::kZ);
  EXPECT_GT(kernels::dot(c, FieldId::kR, FieldId::kZ), 0.0);
}

TEST_F(PreconFixture, DispatchMatchesDirectCalls) {
  Chunk2D& c = cl_->chunk(0);
  kernels::apply_preconditioner(c, PreconType::kNone, FieldId::kR,
                                FieldId::kZ);
  for (int k = 0; k < c.ny(); ++k)
    for (int j = 0; j < c.nx(); ++j)
      EXPECT_DOUBLE_EQ(c.z()(j, k), c.r()(j, k));

  kernels::apply_preconditioner(c, PreconType::kJacobiDiag, FieldId::kR,
                                FieldId::kW);
  kernels::diag_solve(c, FieldId::kR, FieldId::kZ, interior_bounds(c));
  for (int k = 0; k < c.ny(); ++k)
    for (int j = 0; j < c.nx(); ++j)
      EXPECT_DOUBLE_EQ(c.w()(j, k), c.z()(j, k));
}

TEST_F(PreconFixture, TruncatedStripsDecoupleAcrossBlockBoundary) {
  // Changing r inside one strip must not change z in a different strip
  // of the same column (blocks are independent by construction).
  Chunk2D& c = cl_->chunk(0);
  kernels::block_jacobi_solve(c, FieldId::kR, FieldId::kZ);
  const double z_other = c.z()(3, 6);  // strip [4,8)
  c.r()(3, 1) += 5.0;                  // strip [0,4)
  kernels::block_jacobi_solve(c, FieldId::kR, FieldId::kZ);
  EXPECT_DOUBLE_EQ(c.z()(3, 6), z_other);
  EXPECT_NE(c.z()(3, 1), 0.0);
}

TEST(PreconSmall, SingleCellStrip) {
  // ny = 1 forces strips of length 1: M = diag, so block == diag solve.
  SimCluster2D cl(GlobalMesh2D(6, 1), 1, 2);
  Chunk2D& c = cl.chunk(0);
  c.density().fill(2.0);
  kernels::init_conduction(c, kernels::Coefficient::kConductivity, 0.5,
                           0.5);
  kernels::block_jacobi_init(c);
  auto& r = c.r();
  for (int j = 0; j < 6; ++j) r(j, 0) = 1.0 + j;
  kernels::block_jacobi_solve(c, FieldId::kR, FieldId::kZ);
  kernels::diag_solve(c, FieldId::kR, FieldId::kW, interior_bounds(c));
  for (int j = 0; j < 6; ++j)
    EXPECT_NEAR(c.z()(j, 0), c.w()(j, 0), 1e-14);
}

TEST(PreconNames, ToString) {
  EXPECT_STREQ(to_string(PreconType::kNone), "none");
  EXPECT_STREQ(to_string(PreconType::kJacobiDiag), "jac_diag");
  EXPECT_STREQ(to_string(PreconType::kJacobiBlock), "jac_block");
}

}  // namespace
}  // namespace tealeaf
