#include <gtest/gtest.h>

#include "util/args.hpp"
#include "util/error.hpp"
#include "util/numeric.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace tealeaf {
namespace {

TEST(Args, ParsesKeyValueForms) {
  // Positionals precede options: `--verbose input.deck` would bind as a
  // key/value pair (the documented `--key value` form).
  const char* argv[] = {"prog", "input.deck", "--mesh", "128", "--eps=1e-8",
                        "--verbose"};
  Args args(6, argv);
  EXPECT_EQ(args.get_int("mesh", 0), 128);
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.0), 1e-8);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.deck");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Args, FlagFollowedByOptionIsBoolean) {
  const char* argv[] = {"prog", "--flag", "--mesh", "64"};
  Args args(4, argv);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get_int("mesh", 0), 64);
}

TEST(Args, FallbacksApplyWhenMissing) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
}

TEST(Args, ExplicitBooleanValues) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=off"};
  Args args(5, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(Require, ThrowsWithContext) {
  EXPECT_THROW(TEA_REQUIRE(false, "must hold"), TeaError);
  try {
    TEA_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const TeaError& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"),
              std::string::npos);
  }
}

TEST(Numeric, RelDiffAndAlmostEqual) {
  EXPECT_DOUBLE_EQ(rel_diff(1.0, 1.0), 0.0);
  EXPECT_NEAR(rel_diff(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-14));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
  EXPECT_TRUE(almost_equal(0.0, 0.0));
}

TEST(Numeric, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Numeric, CeilDivRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(round_up(10, 8), 16);
  EXPECT_EQ(round_up(16, 8), 16);
}

TEST(Numeric, SplitMix64Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  SplitMix64 c(42);
  for (int i = 0; i < 1000; ++i) {
    const double x = c.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
  SplitMix64 d(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.next_double(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Parallel, ForCoversRangeOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(0, 1000, [&](std::int64_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, ReduceSumMatchesSerial) {
  const double got =
      parallel_reduce_sum(0, 10000, [](std::int64_t i) { return 1.0 * i; });
  EXPECT_DOUBLE_EQ(got, 10000.0 * 9999.0 / 2.0);
}

TEST(Stats, WelfordMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(TimerTest, SectionAccumulates) {
  SectionTimer st;
  for (int i = 0; i < 3; ++i) {
    auto scope = st.scope();
  }
  EXPECT_EQ(st.count(), 3);
  EXPECT_GE(st.total_s(), 0.0);
  st.reset();
  EXPECT_EQ(st.count(), 0);
}

}  // namespace
}  // namespace tealeaf
