#include <gtest/gtest.h>

#include "solvers/cheby_coef.hpp"
#include "solvers/ppcg.hpp"
#include "test_helpers.hpp"

namespace tealeaf {
namespace {

using testing::make_test_problem;
using testing::max_field_diff;

/// The matrix-powers kernel changes only *where* data comes from (deep
/// halos + redundant overlap compute), never the mathematics: PPCG at any
/// halo depth must walk the same iterates as depth 1.
class MatrixPowersDepth : public ::testing::TestWithParam<int> {};

TEST_P(MatrixPowersDepth, SolutionMatchesDepthOne) {
  const int depth = GetParam();
  SolverConfig cfg;
  cfg.type = SolverType::kPPCG;
  cfg.eps = 1e-11;
  cfg.max_iters = 5000;
  cfg.eigen_cg_iters = 12;
  cfg.inner_steps = 10;

  auto ref = make_test_problem(36, 4, 2, 16.0);
  cfg.halo_depth = 1;
  const SolveStats st_ref = PPCGSolver::solve(*ref, cfg);
  ASSERT_TRUE(st_ref.converged);

  auto cl = make_test_problem(36, 4, depth, 16.0);
  cfg.halo_depth = depth;
  const SolveStats st = PPCGSolver::solve(*cl, cfg);
  ASSERT_TRUE(st.converged) << "depth " << depth;
  // Identical math ⇒ identical iteration counts and (to rounding)
  // identical solutions.
  EXPECT_EQ(st.outer_iters, st_ref.outer_iters) << "depth " << depth;
  EXPECT_LT(max_field_diff(*ref, *cl, FieldId::kU), 1e-10)
      << "depth " << depth;
}

INSTANTIATE_TEST_SUITE_P(Depths, MatrixPowersDepth,
                         ::testing::Values(2, 3, 4, 5, 8),
                         [](const auto& info) {
                           return "depth" + std::to_string(info.param);
                         });

TEST(MatrixPowers, DeepHalosSlashExchangeRounds) {
  // Paper §IV-C2: depth n trades one exchange per inner step for one
  // exchange per n steps (messages get n× bigger; total bytes comparable).
  SolverConfig cfg;
  cfg.type = SolverType::kPPCG;
  cfg.eps = 1e-10;
  cfg.eigen_cg_iters = 10;
  cfg.inner_steps = 12;

  auto d1 = make_test_problem(36, 4, 1, 16.0);
  cfg.halo_depth = 1;
  const SolveStats st1 = PPCGSolver::solve(*d1, cfg);
  auto d4 = make_test_problem(36, 4, 4, 16.0);
  cfg.halo_depth = 4;
  const SolveStats st4 = PPCGSolver::solve(*d4, cfg);
  ASSERT_TRUE(st1.converged && st4.converged);
  ASSERT_EQ(st1.outer_iters, st4.outer_iters);

  const auto& s1 = d1->stats();
  const auto& s4 = d4->stats();
  EXPECT_LT(s4.exchange_calls, s1.exchange_calls / 2);
  EXPECT_LT(s4.messages, s1.messages / 2);
  // Bytes stay of the same order: messages get d× bigger but d× rarer
  // (paper §IV-C2).  The deep-halo rounds additionally carry the inner
  // residual (2 fields vs 1) and grow with corner overlap, so allow ~3×.
  EXPECT_LT(s4.message_bytes, 3 * s1.message_bytes);
  EXPECT_GT(s4.message_bytes, s1.message_bytes / 2);
}

TEST(MatrixPowers, InnerApplyBitwiseAcrossDepths) {
  // Drive apply_inner directly with a fixed residual and compare z.
  const auto build = [&](int depth) {
    auto cl = make_test_problem(24, 4, std::max(depth, 1), 8.0);
    cl->for_each_chunk([](int, Chunk2D& c) {
      for (int k = 0; k < c.ny(); ++k)
        for (int j = 0; j < c.nx(); ++j)
          c.r()(j, k) = std::sin(0.37 * (c.extent().x0 + j)) +
                        std::cos(0.21 * (c.extent().y0 + k));
    });
    return cl;
  };
  const ChebyCoefs cc = chebyshev_coefficients(0.8, 5.0, 12);

  SolverConfig cfg;
  cfg.type = SolverType::kPPCG;
  cfg.inner_steps = 12;
  cfg.halo_depth = 1;
  auto ref = build(1);
  PPCGSolver::apply_inner(*ref, cfg, cc, nullptr);

  for (const int depth : {2, 3, 4, 6}) {
    auto cl = build(depth);
    cfg.halo_depth = depth;
    PPCGSolver::apply_inner(*cl, cfg, cc, nullptr);
    EXPECT_LT(max_field_diff(*ref, *cl, FieldId::kZ), 1e-12)
        << "depth " << depth;
  }
}

TEST(MatrixPowers, StatsCountInnerWork) {
  auto cl = make_test_problem(24, 2, 4, 8.0);
  SolverConfig cfg;
  cfg.type = SolverType::kPPCG;
  cfg.halo_depth = 4;
  cfg.inner_steps = 8;
  cfg.eigen_cg_iters = 8;
  cfg.eps = 1e-10;
  const SolveStats st = PPCGSolver::solve(*cl, cfg);
  ASSERT_TRUE(st.converged);
  const long long applies = st.outer_iters - st.eigen_cg_iters + 1;
  EXPECT_EQ(st.inner_steps, applies * cfg.inner_steps);
  // spmv = setup(1) + presteps + outers + inner steps.
  EXPECT_EQ(st.spmv_applies,
            1 + st.eigen_cg_iters + (st.outer_iters - st.eigen_cg_iters) +
                st.inner_steps);
}

TEST(MatrixPowers, DepthBeyondAllocationRejected) {
  auto cl = make_test_problem(24, 2, 2, 8.0);
  SolverConfig cfg;
  cfg.type = SolverType::kPPCG;
  cfg.halo_depth = 8;  // cluster only has 2 halo layers
  EXPECT_THROW(PPCGSolver::solve(*cl, cfg), TeaError);
}

}  // namespace
}  // namespace tealeaf
