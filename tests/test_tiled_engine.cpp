#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "driver/decks.hpp"
#include "driver/deck.hpp"
#include "driver/sweep.hpp"
#include "driver/tealeaf_app.hpp"
#include "model/machine.hpp"
#include "model/scaling.hpp"
#include "model/trace.hpp"
#include "ops/kernels.hpp"
#include "solvers/solver.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"

#if defined(TEALEAF_HAVE_OPENMP)
#include <omp.h>
#endif

namespace tealeaf {
namespace {

using testing::make_test_problem;
using testing::max_field_diff;

// ---- Team::for_range_2d (the tile scheduler) -----------------------------

TEST(TeamForRange2D, CoversEveryPairExactlyOnce) {
  const std::vector<std::int64_t> counts = {3, 0, 5, 1, 4};
  std::vector<std::vector<int>> hits;
  for (const std::int64_t n : counts) {
    hits.emplace_back(static_cast<std::size_t>(n), 0);
  }
  parallel_region([&](Team& t) {
    t.for_range_2d(
        static_cast<std::int64_t>(counts.size()),
        [&](std::int64_t o) { return counts[static_cast<std::size_t>(o)]; },
        [&](std::int64_t o, std::int64_t i) {
          ++hits[static_cast<std::size_t>(o)][static_cast<std::size_t>(i)];
        });
  });
  for (std::size_t o = 0; o < counts.size(); ++o) {
    for (std::size_t i = 0; i < hits[o].size(); ++i) {
      ASSERT_EQ(hits[o][i], 1) << "pair (" << o << ", " << i << ")";
    }
  }
}

TEST(TeamForRange2D, HandlesEmptyAndTinyIterationSpaces) {
  int runs = 0;
  parallel_region([&](Team& t) {
    t.for_range_2d(3, [](std::int64_t) { return 0; },
                   [&](std::int64_t, std::int64_t) { ++runs; });
    // Fewer pairs than threads: each pair still runs exactly once.
    t.for_range_2d(1, [](std::int64_t) { return 1; },
                   [&](std::int64_t, std::int64_t) {
#if defined(TEALEAF_HAVE_OPENMP)
#pragma omp atomic
#endif
                     ++runs;
                   });
  });
  EXPECT_EQ(runs, 1);
}

TEST(TiledCluster, NumRowTilesEdgeCases) {
  EXPECT_EQ(SimCluster2D::num_row_tiles(16, 0), 1);   // untiled
  EXPECT_EQ(SimCluster2D::num_row_tiles(16, 16), 1);  // tile == rows
  EXPECT_EQ(SimCluster2D::num_row_tiles(16, 100), 1); // tile > rows
  EXPECT_EQ(SimCluster2D::num_row_tiles(16, 1), 16);  // one-row tiles
  EXPECT_EQ(SimCluster2D::num_row_tiles(16, 5), 4);   // non-dividing
  EXPECT_EQ(SimCluster2D::num_row_tiles(0, 4), 0);    // empty range
}

// ---- tiled kernels vs their untiled forms (bitwise) ----------------------

/// Deterministic non-trivial fill of the solver work fields.
void fill_work_fields(SimCluster2D& cl, int halo) {
  cl.for_each_chunk([&](int r, Chunk2D& c) {
    for (int k = -halo; k < c.ny() + halo; ++k) {
      for (int j = -halo; j < c.nx() + halo; ++j) {
        c.p()(j, k) = 0.02 * j - 0.015 * k + 0.1 * r;
        c.r()(j, k) = 0.5 - 0.003 * j * k;
        c.z()(j, k) = 0.25 * j + 0.01 * k;
        c.sd()(j, k) = 0.01 * (j + 2 * k) + r;
        c.rtemp()(j, k) = 1.0 / (1.0 + 0.1 * (j + k + 2 * halo));
        c.w()(j, k) = 0.3 * k - 0.02 * j;
      }
    }
  });
}

TEST(TiledKernels, ChebyStepTileMatchesUntiledForAllTileSizes) {
  for (const bool diag : {false, true}) {
    for (const int tile : {1, 2, 3, 5, 14, 100}) {
      auto a = make_test_problem(28, 2, 3);
      auto b = make_test_problem(28, 2, 3);
      fill_work_fields(*a, 3);
      fill_work_fields(*b, 3);
      a->for_each_chunk([&](int, Chunk2D& c) {
        kernels::cheby_step(c, FieldId::kRtemp, FieldId::kSd, FieldId::kZ,
                            0.37, 1.21, diag, extended_bounds(c, 2));
      });
      // Tiled: stencil passes for every block, then the deferred edges —
      // the order the fused engine runs them in (barrier between).
      b->for_each_chunk([&](int, Chunk2D& c) {
        const Bounds bb = extended_bounds(c, 2);
        const int rows = bb.khi - bb.klo;
        const int h = tile >= rows ? rows : tile;
        const auto block = [&](int k0) {
          Bounds tb = bb;
          tb.klo = k0;
          tb.khi = std::min(bb.khi, k0 + h);
          return tb;
        };
        for (int k0 = bb.klo; k0 < bb.khi; k0 += h) {
          kernels::cheby_step_tile(c, FieldId::kRtemp, FieldId::kSd,
                                   FieldId::kZ, 0.37, 1.21, diag, bb,
                                   block(k0));
        }
        for (int k0 = bb.klo; k0 < bb.khi; k0 += h) {
          kernels::cheby_step_tile_edges(c, FieldId::kRtemp, FieldId::kSd,
                                         FieldId::kZ, 0.37, 1.21, diag, bb,
                                         block(k0));
        }
      });
      for (const FieldId f :
           {FieldId::kRtemp, FieldId::kSd, FieldId::kZ, FieldId::kW}) {
        EXPECT_EQ(max_field_diff(*a, *b, f), 0.0)
            << "diag=" << diag << " tile=" << tile;
      }
    }
  }
}

TEST(TiledKernels, RowReductionsMatchFullKernelsBitwise) {
  auto a = make_test_problem(20, 2, 2);
  auto b = make_test_problem(20, 2, 2);
  fill_work_fields(*a, 2);
  fill_work_fields(*b, 2);

  for (int r = 0; r < a->nranks(); ++r) {
    Chunk2D& ca = a->chunk(r);
    Chunk2D& cb = b->chunk(r);
    const Bounds in = interior_bounds(ca);

    // dot
    const double full_dot = kernels::dot(ca, FieldId::kP, FieldId::kZ);
    const auto block = [&](int k0, int h) {
      Bounds tb = in;
      tb.klo = k0;
      tb.khi = std::min(cb.ny(), k0 + h);
      return tb;
    };
    std::vector<double> rows(static_cast<std::size_t>(cb.ny()), 0.0);
    for (int k0 = 0; k0 < cb.ny(); k0 += 3) {
      kernels::dot_rows(cb, FieldId::kP, FieldId::kZ, block(k0, 3),
                        rows.data());
    }
    double tiled_dot = 0.0;
    for (int k = 0; k < cb.ny(); ++k) tiled_dot += rows[k];
    EXPECT_EQ(tiled_dot, full_dot);

    // smvp_dot
    const double full_pw = kernels::smvp_dot(ca, FieldId::kP, FieldId::kW, in);
    for (int k0 = 0; k0 < cb.ny(); k0 += 4) {
      kernels::smvp_dot_rows(cb, FieldId::kP, FieldId::kW, in, block(k0, 4),
                             rows.data());
    }
    double tiled_pw = 0.0;
    for (int k = 0; k < cb.ny(); ++k) tiled_pw += rows[k];
    EXPECT_EQ(tiled_pw, full_pw);
    EXPECT_EQ(max_field_diff(*a, *b, FieldId::kW), 0.0);

    // smvp_dot2
    const auto full_pair =
        kernels::smvp_dot2(ca, FieldId::kZ, FieldId::kW, FieldId::kR, in);
    std::vector<double> rows2(2 * static_cast<std::size_t>(cb.ny()), 0.0);
    for (int k0 = 0; k0 < cb.ny(); k0 += 5) {
      kernels::smvp_dot2_rows(cb, FieldId::kZ, FieldId::kW, FieldId::kR, in,
                              block(k0, 5), rows2.data());
    }
    double t0 = 0.0, t1 = 0.0;
    for (int k = 0; k < cb.ny(); ++k) {
      t0 += rows2[2 * k];
      t1 += rows2[2 * k + 1];
    }
    EXPECT_EQ(t0, full_pair.first);
    EXPECT_EQ(t1, full_pair.second);
  }
}

TEST(TiledKernels, CalcUrDotRowsMatchesFullKernel) {
  for (const PreconType precon :
       {PreconType::kNone, PreconType::kJacobiDiag}) {
    auto a = make_test_problem(20, 2, 2);
    auto b = make_test_problem(20, 2, 2);
    fill_work_fields(*a, 2);
    fill_work_fields(*b, 2);
    const double unfused = a->sum_over_chunks([&](int, Chunk2D& c) {
      return kernels::calc_ur_dot(c, 0.61, precon);
    });
    const double tiled = b->sum_rows_over_chunks(
        nullptr, 3, [&](int, Chunk2D& c, const Bounds& tb) {
          kernels::calc_ur_dot_rows(c, 0.61, precon, tb, c.row_scratch());
        });
    EXPECT_EQ(tiled, unfused) << to_string(precon);
    for (const FieldId f : {FieldId::kU, FieldId::kR}) {
      EXPECT_EQ(max_field_diff(*a, *b, f), 0.0) << to_string(precon);
    }
  }
}

TEST(TiledKernels, JacobiTwoPhaseMatchesFusedSweep) {
  auto a = make_test_problem(24, 2, 2);
  auto b = make_test_problem(24, 2, 2);
  a->exchange({FieldId::kU}, 1);
  b->exchange({FieldId::kU}, 1);
  const double full = a->sum_over_chunks(
      [](int, Chunk2D& c) { return kernels::jacobi_iterate(c); });
  const double tiled = [&] {
    b->for_each_tile(nullptr, 5,
                     [](int, Chunk2D& c) {
                       Bounds bb = interior_bounds(c);
                       bb.klo -= 1;
                       bb.khi += 1;
                       return bb;
                     },
                     [](int, Chunk2D& c, const Bounds& tb) {
                       kernels::jacobi_save_rows(c, tb);
                     });
    return b->sum_rows_over_chunks(
        nullptr, 5, [](int, Chunk2D& c, const Bounds& tb) {
          kernels::jacobi_update_rows(c, tb, c.row_scratch());
        });
  }();
  EXPECT_EQ(tiled, full);
  EXPECT_EQ(max_field_diff(*a, *b, FieldId::kU), 0.0);
}

TEST(TiledCluster, SumRowsMatchesSumOverChunksBitwise) {
  auto cl = make_test_problem(24, 5, 2);
  const double untiled = cl->sum_over_chunks(
      [](int, const Chunk2D& c) { return kernels::norm2_sq(c, FieldId::kU); });
  cl->reset_stats();
  for (const int tile : {1, 3, 24, 0}) {
    double tiled = 0.0;
    parallel_region([&](Team& t) {
      const double v = cl->sum_rows_over_chunks(
          &t, tile, [](int, Chunk2D& c, const Bounds& tb) {
            kernels::dot_rows(c, FieldId::kU, FieldId::kU, tb,
                              c.row_scratch());
          });
      t.single([&] { tiled = v; });
    });
    EXPECT_EQ(tiled, untiled) << "tile=" << tile;
  }
  EXPECT_EQ(cl->stats().reductions, 4);
}

// ---- whole-solver tiled-vs-untiled equivalence ---------------------------

struct TiledCase {
  SolverType type;
  PreconType precon;
  int halo_depth;
  bool chrono;
  int tile_rows;
  // Shared by both configs: assembled cases check the tiled row-blocking
  // against the untiled fused run on the CSR / SELL-C-σ SpMV paths.
  OperatorKind op = OperatorKind::kStencil;
};

class TiledEngineEquivalence : public ::testing::TestWithParam<TiledCase> {};

TEST_P(TiledEngineEquivalence, BitwiseIdenticalToUntiledFused) {
  const TiledCase tc = GetParam();
  SolverConfig cfg;
  cfg.type = tc.type;
  cfg.precon = tc.precon;
  cfg.halo_depth = tc.halo_depth;
  cfg.fuse_cg_reductions = tc.chrono;
  cfg.fuse_kernels = true;
  cfg.op = tc.op;
  cfg.eps = (tc.type == SolverType::kJacobi) ? 1e-5 : 1e-10;
  cfg.max_iters = (tc.type == SolverType::kJacobi) ? 100000 : 10000;

  auto a = make_test_problem(32, 4, std::max(2, tc.halo_depth), 8.0);
  auto b = make_test_problem(32, 4, std::max(2, tc.halo_depth), 8.0);
  testing::install_operator(*a, tc.op);
  testing::install_operator(*b, tc.op);
  SolverConfig tiled_cfg = cfg;
  tiled_cfg.tile_rows = tc.tile_rows;
  const SolveStats su = run_solver(*a, cfg);
  const SolveStats st = run_solver(*b, tiled_cfg);

  ASSERT_TRUE(su.converged);
  ASSERT_TRUE(st.converged);
  // The tiled engine only re-blocks the row loops: per-row arithmetic and
  // the row/rank-ordered reductions are shared with the untiled fused
  // path, so everything must match exactly.
  EXPECT_EQ(st.outer_iters, su.outer_iters);
  EXPECT_EQ(st.inner_steps, su.inner_steps);
  EXPECT_EQ(st.spmv_applies, su.spmv_applies);
  EXPECT_EQ(st.eigen_cg_iters, su.eigen_cg_iters);
  EXPECT_EQ(st.initial_norm, su.initial_norm);
  EXPECT_EQ(st.final_norm, su.final_norm);
  EXPECT_EQ(max_field_diff(*a, *b, FieldId::kU), 0.0);

  // Tiling changes the schedule, never the data motion.
  EXPECT_EQ(a->stats().exchange_calls, b->stats().exchange_calls);
  EXPECT_EQ(a->stats().messages, b->stats().messages);
  EXPECT_EQ(a->stats().message_bytes, b->stats().message_bytes);
  EXPECT_EQ(a->stats().reductions, b->stats().reductions);
}

INSTANTIATE_TEST_SUITE_P(
    AllSolversAndTileSizes, TiledEngineEquivalence,
    ::testing::Values(
        // One-row tiles, non-dividing tiles, tile >= chunk rows.
        TiledCase{SolverType::kJacobi, PreconType::kNone, 1, false, 1},
        TiledCase{SolverType::kJacobi, PreconType::kNone, 1, false, 7},
        TiledCase{SolverType::kCG, PreconType::kNone, 1, false, 1},
        TiledCase{SolverType::kCG, PreconType::kNone, 1, false, 7},
        TiledCase{SolverType::kCG, PreconType::kNone, 1, false, 1000},
        TiledCase{SolverType::kCG, PreconType::kJacobiDiag, 1, false, 5},
        TiledCase{SolverType::kCG, PreconType::kJacobiBlock, 1, false, 5},
        TiledCase{SolverType::kCG, PreconType::kNone, 1, true, 7},
        TiledCase{SolverType::kCG, PreconType::kJacobiDiag, 1, true, 3},
        TiledCase{SolverType::kCG, PreconType::kJacobiBlock, 1, true, 6},
        TiledCase{SolverType::kChebyshev, PreconType::kNone, 1, false, 5},
        TiledCase{SolverType::kChebyshev, PreconType::kJacobiDiag, 1, false,
                  4},
        TiledCase{SolverType::kPPCG, PreconType::kNone, 1, false, 5},
        TiledCase{SolverType::kPPCG, PreconType::kJacobiDiag, 1, false, 3},
        TiledCase{SolverType::kPPCG, PreconType::kNone, 4, false, 5},
        TiledCase{SolverType::kPPCG, PreconType::kJacobiDiag, 4, false, 1},
        // Assembled operators: row-blocked SpMV over CSR / SELL-C-σ must
        // stay bitwise identical to the untiled fused run, including the
        // deferred-edge schedule at awkward tile heights.
        TiledCase{SolverType::kJacobi, PreconType::kNone, 1, false, 3,
                  OperatorKind::kCsr},
        TiledCase{SolverType::kCG, PreconType::kNone, 1, false, 1,
                  OperatorKind::kCsr},
        TiledCase{SolverType::kCG, PreconType::kJacobiBlock, 1, false, 5,
                  OperatorKind::kCsr},
        TiledCase{SolverType::kCG, PreconType::kJacobiDiag, 1, true, 7,
                  OperatorKind::kCsr},
        TiledCase{SolverType::kChebyshev, PreconType::kNone, 1, false, 4,
                  OperatorKind::kCsr},
        TiledCase{SolverType::kPPCG, PreconType::kJacobiDiag, 1, false, 5,
                  OperatorKind::kCsr},
        TiledCase{SolverType::kCG, PreconType::kNone, 1, false, 7,
                  OperatorKind::kSellCSigma},
        TiledCase{SolverType::kCG, PreconType::kJacobiBlock, 1, false, 3,
                  OperatorKind::kSellCSigma},
        TiledCase{SolverType::kChebyshev, PreconType::kJacobiDiag, 1, false, 5,
                  OperatorKind::kSellCSigma},
        TiledCase{SolverType::kPPCG, PreconType::kNone, 1, false, 1000,
                  OperatorKind::kSellCSigma}),
    [](const auto& info) {
      const TiledCase& tc = info.param;
      std::string name = std::string(to_string(tc.type)) + "_" +
                         to_string(tc.precon) + "_d" +
                         std::to_string(tc.halo_depth) + "_b" +
                         std::to_string(tc.tile_rows);
      if (tc.chrono) name += "_chrono";
      if (tc.op == OperatorKind::kCsr) name += "_csr";
      if (tc.op == OperatorKind::kSellCSigma) name += "_sell";
      return name;
    });

// ---- 2-D scheduling: more threads than simulated ranks -------------------

TEST(TiledScheduling, MoreThreadsThanRanksStaysBitwiseIdentical) {
#if defined(TEALEAF_HAVE_OPENMP)
  // Reference on the current thread count, then rerun tiled with the team
  // deliberately oversubscribed past the rank count so the (rank,
  // row-block) 2-D schedule engages.
  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  cfg.fuse_kernels = true;
  cfg.eps = 1e-10;

  auto a = make_test_problem(32, 2, 2, 8.0);
  const SolveStats su = run_solver(*a, cfg);
  ASSERT_TRUE(su.converged);

  const int saved = omp_get_max_threads();
  omp_set_num_threads(5);  // > 2 ranks → flat (rank, block) pairs
  auto b = make_test_problem(32, 2, 2, 8.0);
  SolverConfig tiled = cfg;
  tiled.tile_rows = 3;
  const SolveStats st = run_solver(*b, tiled);
  omp_set_num_threads(saved);

  ASSERT_TRUE(st.converged);
  EXPECT_EQ(st.outer_iters, su.outer_iters);
  EXPECT_EQ(st.final_norm, su.final_norm);
  EXPECT_EQ(max_field_diff(*a, *b, FieldId::kU), 0.0);
#else
  GTEST_SKIP() << "OpenMP disabled: the team never exceeds one thread";
#endif
}

// ---- auto tile derivation ------------------------------------------------

TEST(AutoTile, DerivesFromMachineL2AndFallsBack) {
  const MachineSpec spruce = machines::spruce_hybrid();
  ASSERT_GT(spruce.l2_kb, 0.0);
  const int rows = auto_tile_rows(spruce, 512, 2);
  EXPECT_GE(rows, 1);
  // Half of 256 KB over 6 fields × 8 B × (512+4) cells ≈ 5 rows.
  EXPECT_LT(rows, 64);
  // Narrower chunks fit more rows per block.
  EXPECT_GT(auto_tile_rows(spruce, 64, 2), rows);
  // No modelled L2: the documented 64-row fallback.
  MachineSpec no_l2 = spruce;
  no_l2.l2_kb = 0.0;
  EXPECT_EQ(auto_tile_rows(no_l2, 512, 2), 64);
}

TEST(AutoTile, AutoConfigSolvesBitwiseIdenticalToUntiled) {
  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  cfg.fuse_kernels = true;
  cfg.eps = 1e-10;
  auto a = make_test_problem(32, 4, 2, 8.0);
  auto b = make_test_problem(32, 4, 2, 8.0);
  SolverConfig auto_cfg = cfg;
  auto_cfg.tile_rows = -1;
  const SolveStats su = run_solver(*a, cfg);
  const SolveStats st = run_solver(*b, auto_cfg);
  ASSERT_TRUE(su.converged && st.converged);
  EXPECT_EQ(st.outer_iters, su.outer_iters);
  EXPECT_EQ(st.final_norm, su.final_norm);
  EXPECT_EQ(max_field_diff(*a, *b, FieldId::kU), 0.0);
}

// ---- batched fused Jacobi ------------------------------------------------

TEST(JacobiBatch, BatchedFusedMatchesUnfusedAcrossBatchBoundaries) {
  // Enough iterations to cross several 16-sweep batches; the fused path
  // must stop on exactly the same sweep as the unfused path.
  SolverConfig cfg;
  cfg.type = SolverType::kJacobi;
  cfg.eps = 1e-6;
  cfg.max_iters = 100000;
  auto a = make_test_problem(24, 2, 2, 4.0);
  auto b = make_test_problem(24, 2, 2, 4.0);
  SolverConfig fused = cfg;
  fused.fuse_kernels = true;
  const SolveStats su = run_solver(*a, cfg);
  const SolveStats sf = run_solver(*b, fused);
  ASSERT_TRUE(su.converged);
  ASSERT_TRUE(sf.converged);
  ASSERT_GT(su.outer_iters, 16) << "problem too easy to cross a batch";
  EXPECT_EQ(sf.outer_iters, su.outer_iters);
  EXPECT_EQ(sf.initial_norm, su.initial_norm);
  EXPECT_EQ(sf.final_norm, su.final_norm);
  EXPECT_EQ(max_field_diff(*a, *b, FieldId::kU), 0.0);
  EXPECT_EQ(a->stats().reductions, b->stats().reductions);
  EXPECT_EQ(a->stats().message_bytes, b->stats().message_bytes);
}

TEST(JacobiBatch, MaxItersStopsMidBatch) {
  SolverConfig cfg;
  cfg.type = SolverType::kJacobi;
  cfg.eps = 1e-14;
  cfg.max_iters = 21;  // not a multiple of the 16-sweep batch
  cfg.fuse_kernels = true;
  auto cl = make_test_problem(24, 2, 2, 4.0);
  const SolveStats st = run_solver(*cl, cfg);
  EXPECT_FALSE(st.converged);
  EXPECT_EQ(st.outer_iters, 21);
}

// ---- sweep seventh axis --------------------------------------------------

TEST(SweepTileAxis, EnumeratesAsSeventhInnermostAxis) {
  SweepSpec spec;
  spec.solvers = {"cg"};
  spec.fused = {0, 1};
  spec.tile_rows = {0, 8};
  const std::vector<SweepCase> cases = enumerate_cases(spec, 16);
  ASSERT_EQ(cases.size(), 4u);
  ASSERT_EQ(spec.num_cases(), 4u);
  EXPECT_EQ(cases[0].label(), "cg/none/d1/n16/t0");
  EXPECT_EQ(cases[1].label(), "cg/none/d1/n16/t0/b8");
  EXPECT_EQ(cases[2].label(), "cg/none/d1/n16/t0/fused");
  EXPECT_EQ(cases[3].label(), "cg/none/d1/n16/t0/fused/b8");
  spec.tile_rows = {-2};
  EXPECT_THROW(spec.validate(), TeaError);
}

TEST(SweepTileAxis, TiledCellsMatchUntiledAndRoundTrip) {
  InputDeck base = decks::hot_block(16, 1);
  base.solver.eps = 1e-8;
  SweepSpec spec;
  spec.solvers = {"cg", "mg-pcg"};
  spec.fused = {0, 1};
  spec.tile_rows = {0, 4};
  spec.ranks = 2;
  const SweepReport rep = run_sweep(base, spec);
  ASSERT_EQ(rep.cells.size(), 8u);

  // cg: unfused, unfused/b4 (skipped), fused, fused/b4.
  EXPECT_FALSE(rep.cells[0].skipped);
  EXPECT_TRUE(rep.cells[1].skipped);  // tiling needs the fused engine
  EXPECT_FALSE(rep.cells[2].skipped);
  EXPECT_FALSE(rep.cells[3].skipped);
  EXPECT_EQ(rep.cells[3].config.tile_rows, 4);
  EXPECT_TRUE(rep.cells[3].converged);
  EXPECT_EQ(rep.cells[3].iterations, rep.cells[0].iterations);
  EXPECT_EQ(rep.cells[3].final_norm, rep.cells[2].final_norm);
  EXPECT_EQ(rep.cells[3].message_bytes, rep.cells[2].message_bytes);

  // mg-pcg: fused runs now; its tiled cells are skipped.
  EXPECT_FALSE(rep.cells[4].skipped);
  EXPECT_TRUE(rep.cells[5].skipped);
  EXPECT_FALSE(rep.cells[6].skipped);
  EXPECT_TRUE(rep.cells[7].skipped);
  EXPECT_TRUE(rep.cells[6].converged);
  EXPECT_EQ(rep.cells[6].iterations, rep.cells[4].iterations);

  // The tile column survives both serialisation round trips.
  const SweepReport csv_back = SweepReport::from_csv_lines(rep.to_csv_lines());
  const SweepReport json_back =
      SweepReport::from_json_string(rep.to_json().dump(2));
  for (std::size_t i = 0; i < rep.cells.size(); ++i) {
    EXPECT_EQ(csv_back.cells[i].config.tile_rows,
              rep.cells[i].config.tile_rows);
    EXPECT_EQ(json_back.cells[i].config.tile_rows,
              rep.cells[i].config.tile_rows);
    EXPECT_EQ(csv_back.cells[i].config.label(), rep.cells[i].config.label());
  }
}

// ---- deck knobs and diagnostics ------------------------------------------

TEST(TileDeck, TileRowsKnobParsesAndRoundTrips) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\nx_cells=16\ny_cells=16\nend_step=1\n"
      "tl_fuse_kernels\ntl_tile_rows=24\n"
      "sweep_solvers=cg\nsweep_tile_rows=0,16,64\n"
      "state 1 density=1.0 energy=1.0\n*endtea\n");
  EXPECT_EQ(deck.solver.tile_rows, 24);
  EXPECT_EQ(deck.sweep.tile_rows, (std::vector<int>{0, 16, 64}));
  const InputDeck back = InputDeck::parse_string(deck.to_string());
  EXPECT_EQ(back.solver.tile_rows, 24);
  EXPECT_EQ(back.sweep.tile_rows, deck.sweep.tile_rows);
}

TEST(TileDeck, AutoTileRowsRoundTrips) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\nx_cells=16\ny_cells=16\nend_step=1\n"
      "tl_tile_rows=auto\nstate 1 density=1.0 energy=1.0\n*endtea\n");
  EXPECT_EQ(deck.solver.tile_rows, -1);
  const InputDeck back = InputDeck::parse_string(deck.to_string());
  EXPECT_EQ(back.solver.tile_rows, -1);
}

TEST(TileDeck, MistypedKnobFailsWithSuggestion) {
  try {
    InputDeck::parse_string(
        "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
        "tl_tile_row=16\nstate 1 density=1 energy=1\n*endtea\n");
    FAIL() << "typo must not be silently ignored";
  } catch (const TeaError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown key 'tl_tile_row'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("did you mean 'tl_tile_rows'"), std::string::npos)
        << msg;
  }
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "sweep_fuse=1\nstate 1 density=1 energy=1\n*endtea\n"),
               TeaError);
}

TEST(TileDeck, KnobOutsideTeaBlockIsRejected) {
  EXPECT_THROW(InputDeck::parse_string(
                   "tl_tile_rows=16\n*tea\nx_cells=8\ny_cells=8\n"
                   "end_step=1\nstate 1 density=1 energy=1\n*endtea\n"),
               TeaError);
  // A knob trailing the *endtea line must be rejected too, not dropped.
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "state 1 density=1 energy=1\n*endtea\n"
                   "tl_tile_rows=16\n"),
               TeaError);
}

TEST(TileDeck, BooleanFlagsAcceptExplicitValues) {
  const InputDeck off = InputDeck::parse_string(
      "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
      "tl_fuse_kernels=0\nstate 1 density=1 energy=1\n*endtea\n");
  EXPECT_FALSE(off.solver.fuse_kernels);
  const InputDeck on = InputDeck::parse_string(
      "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
      "tl_fuse_kernels=true\nstate 1 density=1 energy=1\n*endtea\n");
  EXPECT_TRUE(on.solver.fuse_kernels);
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "tl_fuse_kernels=maybe\nstate 1 density=1 energy=1\n"
                   "*endtea\n"),
               TeaError);
}

// ---- scaling model: blocked-cache variant --------------------------------

TEST(TiledModel, BlockedBytesVariantSpeedsUpCacheFittingTiles) {
  SolverConfig cfg;
  cfg.type = SolverType::kJacobi;
  SolveStats stats;
  stats.outer_iters = 200;
  SolverRunSummary run = SolverRunSummary::from(cfg, stats, 1024);
  const GlobalMesh2D mesh(1024, 1024);
  const ScalingModel model(machines::spruce_hybrid(), mesh, 1);

  const double untiled = model.run_seconds(run, 1);
  run.tile_rows = 4;  // 4 rows × 1024 cells × 6 fields × 8 B ≈ 192 KB < L2
  const double tiled_fit = model.run_seconds(run, 1);
  run.tile_rows = 4096;  // taller than L2: streaming bytes again
  const double tiled_spill = model.run_seconds(run, 1);

  EXPECT_LT(tiled_fit, untiled);
  EXPECT_EQ(tiled_spill, untiled);

  // A machine with no modelled L2 never takes the blocked variant.
  MachineSpec no_l2 = machines::spruce_hybrid();
  no_l2.l2_kb = 0.0;
  const ScalingModel flat(no_l2, mesh, 1);
  run.tile_rows = 4;
  EXPECT_EQ(flat.run_seconds(run, 1), flat.run_seconds([&] {
    SolverRunSummary u = run;
    u.tile_rows = 0;
    return u;
  }(), 1));
}

TEST(TiledModel, SummaryRecordsEffectiveTileHeightAndResolvesAuto) {
  // An unfused config runs untiled whatever the knob says: the summary
  // must record that, or the model would price phantom cache blocking.
  SolverConfig cfg;
  cfg.type = SolverType::kJacobi;
  cfg.tile_rows = 128;
  cfg.fuse_kernels = false;
  SolveStats stats;
  stats.outer_iters = 100;
  EXPECT_EQ(SolverRunSummary::from(cfg, stats, 256).tile_rows, 0);

  // `auto` stays symbolic in the summary and resolves inside the model
  // against the modelled chunk width, like the real engine does.
  cfg.fuse_kernels = true;
  cfg.tile_rows = -1;
  SolverRunSummary run = SolverRunSummary::from(cfg, stats, 1024);
  EXPECT_EQ(run.tile_rows, -1);
  const GlobalMesh2D mesh(1024, 1024);
  const ScalingModel model(machines::spruce_hybrid(), mesh, 1);
  SolverRunSummary untiled = run;
  untiled.tile_rows = 0;
  // spruce L2 fits the auto-derived block → the blocked variant applies.
  EXPECT_LT(model.run_seconds(run, 1), model.run_seconds(untiled, 1));
}

}  // namespace
}  // namespace tealeaf
