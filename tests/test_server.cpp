#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/solve_api.hpp"
#include "driver/decks.hpp"
#include "server/batch.hpp"
#include "server/routing.hpp"
#include "server/solve_server.hpp"
#include "solvers/solver.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tealeaf {
namespace {

SolverConfig native_config(SolverType t) {
  SolverConfig cfg;
  cfg.type = t;
  cfg.fuse_kernels = true;
  cfg.max_iters = 20000;
  // Jacobi's convergence rate makes tight tolerances impractical on the
  // test problem; the bitwise comparison does not care about depth.
  cfg.eps = t == SolverType::kJacobi ? 1e-4 : 1e-8;
  if (t == SolverType::kPPCG) {
    cfg.precon = PreconType::kJacobiDiag;
    cfg.halo_depth = 2;
  }
  return cfg;
}

/// The tentpole invariant: a batch of N requests coalesced through one
/// parallel region is bitwise identical to solving each alone, for every
/// native solver, in both geometries.  Sub-team scheduling changes who
/// computes, never what is computed.
TEST(BatchEngine, BatchOfNBitwiseEqualsSolo2D) {
  const double conditioning[] = {2.0, 4.0, 6.0};
  for (SolverType t : {SolverType::kJacobi, SolverType::kCG,
                       SolverType::kChebyshev, SolverType::kPPCG}) {
    std::vector<std::unique_ptr<SimCluster2D>> batched, solo;
    std::vector<BatchItem> items;
    for (double rxy : conditioning) {
      batched.push_back(testing::make_test_problem(24, 2, 2, rxy));
      solo.push_back(testing::make_test_problem(24, 2, 2, rxy));
      items.push_back({batched.back().get(), native_config(t), {}});
    }
    solve_batched(items);
    for (std::size_t i = 0; i < items.size(); ++i) {
      const SolveStats ref = run_solver(*solo[i], native_config(t));
      EXPECT_TRUE(items[i].stats.converged);
      EXPECT_EQ(items[i].stats.outer_iters, ref.outer_iters);
      EXPECT_EQ(items[i].stats.final_norm, ref.final_norm);
      EXPECT_EQ(testing::max_field_diff(*batched[i], *solo[i], FieldId::kU),
                0.0);
    }
  }
}

TEST(BatchEngine, BatchOfNBitwiseEqualsSolo3D) {
  const double conditioning[] = {2.0, 4.0, 6.0};
  for (SolverType t : {SolverType::kJacobi, SolverType::kCG,
                       SolverType::kChebyshev, SolverType::kPPCG}) {
    std::vector<std::unique_ptr<SimCluster>> batched, solo;
    std::vector<BatchItem> items;
    for (double rxyz : conditioning) {
      batched.push_back(testing::make_test_problem_3d(10, 2, 2, rxyz));
      solo.push_back(testing::make_test_problem_3d(10, 2, 2, rxyz));
      items.push_back({batched.back().get(), native_config(t), {}});
    }
    solve_batched(items);
    for (std::size_t i = 0; i < items.size(); ++i) {
      const SolveStats ref = run_solver(*solo[i], native_config(t));
      EXPECT_TRUE(items[i].stats.converged);
      EXPECT_EQ(items[i].stats.outer_iters, ref.outer_iters);
      EXPECT_EQ(items[i].stats.final_norm, ref.final_norm);
      EXPECT_EQ(testing::max_field_diff(*batched[i], *solo[i], FieldId::kU),
                0.0);
    }
  }
}

SweepReport synthetic_report() {
  SweepReport rep;
  rep.ranks = 2;
  rep.steps = 1;
  const auto add = [&](const std::string& solver, PreconType pre, int depth,
                       bool fused, double seconds, int iters) {
    SweepOutcome cell;
    cell.config.solver = solver;
    cell.config.precon = pre;
    cell.config.halo_depth = depth;
    cell.config.mesh_n = 16;
    cell.config.fused = fused;
    cell.config.dims = 2;
    cell.converged = true;
    cell.iterations = iters;
    cell.solve_seconds = seconds;
    rep.cells.push_back(cell);
  };
  add("ppcg", PreconType::kJacobiDiag, 2, true, 0.010, 12);
  add("cg", PreconType::kNone, 1, true, 0.020, 40);
  add("jacobi", PreconType::kNone, 1, true, 0.300, 900);
  add("mg-pcg", PreconType::kNone, 1, true, 0.050, 8);
  return rep;
}

TEST(RoutingTable, RanksMeasuredCellsFastestFirst) {
  const RoutingTable table = RoutingTable::from_sweep(synthetic_report());
  EXPECT_EQ(table.size(), 4u);

  const std::vector<RouteEntry> multi = table.route(2, 16, 2);
  ASSERT_EQ(multi.size(), 3u);  // mg-pcg needs the undecomposed grid
  EXPECT_EQ(multi.front().config.type, SolverType::kPPCG);
  EXPECT_FALSE(multi.front().projected);
  EXPECT_EQ(multi.front().label(), "ppcg/jac_diag/d2/n16/fused");
  EXPECT_EQ(multi.back().config.type, SolverType::kJacobi);

  const std::vector<RouteEntry> single = table.route(2, 16, 1);
  ASSERT_EQ(single.size(), 4u);
  EXPECT_EQ(single[2].solver, "mg-pcg");  // 0.05 s slots in after cg
}

TEST(RoutingTable, UnseenMeshFallsBackToModelProjection) {
  const RoutingTable table = RoutingTable::from_sweep(synthetic_report());
  const std::vector<RouteEntry> ranked = table.route(2, 48, 2);
  ASSERT_FALSE(ranked.empty());
  for (const RouteEntry& e : ranked) {
    EXPECT_TRUE(e.projected);
    EXPECT_EQ(e.mesh_n, 48);
    EXPECT_EQ(e.label().front(), '~');
    EXPECT_GT(e.seconds, 0.0);
  }
  // Nothing measured in 3-D: routing has nothing to offer.
  EXPECT_TRUE(table.route(3, 16, 2).empty());
}

TEST(RoutingTable, RoundTripsThroughSweepJson) {
  const SweepReport rep = synthetic_report();
  const RoutingTable table =
      RoutingTable::from_json_string(rep.to_json().dump(2));
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(table.route(2, 16, 2).front().label(),
            "ppcg/jac_diag/d2/n16/fused");
}

TEST(SolveServer, MixedShapeStreamBatchesPerShapeInArrivalOrder) {
  SolveServer server;
  for (int i = 0; i < 4; ++i) {
    SolveRequest req;
    req.deck = decks::hot_block(24, 1);
    req.nranks = 2;
    req.tag = "small-" + std::to_string(i);
    server.submit(std::move(req));
  }
  for (int i = 0; i < 2; ++i) {
    SolveRequest req;
    req.deck = decks::hot_block(32, 1);
    req.nranks = 2;
    req.tag = "large-" + std::to_string(i);
    server.submit(std::move(req));
  }
  const std::vector<SolveResult> results = server.drain();
  ASSERT_EQ(results.size(), 6u);
  for (const SolveResult& r : results) EXPECT_TRUE(r.ok());
  EXPECT_EQ(results[0].tag, "small-0");
  EXPECT_EQ(results[5].tag, "large-1");
  EXPECT_TRUE(results[0].batched);
  EXPECT_TRUE(results[5].batched);

  // Batched-through-the-server ≡ a lone session solving the same deck.
  SolveSession solo(decks::hot_block(24, 1), 2);
  const SolveStats ref = solo.solve();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(results[i].stats.final_norm, ref.final_norm);
    EXPECT_EQ(results[i].stats.outer_iters, ref.outer_iters);
  }
  EXPECT_EQ(server.stats().requests, 6);
  EXPECT_EQ(server.stats().batched_requests, 6);
}

TEST(SolveServer, ShapeCacheReusesSessionsAcrossDrains) {
  SolveServer server;
  SolveRequest req;
  req.deck = decks::hot_block(24, 1);
  req.nranks = 2;
  const SolveResult first = server.solve_one(req);
  EXPECT_TRUE(first.ok());
  EXPECT_EQ(server.sessions().hits(), 0);
  const SolveResult second = server.solve_one(req);
  EXPECT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(server.sessions().hits(), 1);
  EXPECT_EQ(server.stats().cache_hits, 1);
  // Identical request on a reset session: identical solve.
  EXPECT_EQ(second.stats.final_norm, first.stats.final_norm);
}

TEST(SolveServer, RoutesRequestsThroughTheTable) {
  ServerOptions opts;
  opts.routes = RoutingTable::from_sweep(synthetic_report());
  SolveServer server(std::move(opts));
  SolveRequest req;
  req.deck = decks::hot_block(16, 1);
  req.nranks = 2;
  const SolveResult res = server.solve_one(req);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.route_label, "ppcg/jac_diag/d2/n16/fused");
  EXPECT_EQ(res.config.type, SolverType::kPPCG);
  EXPECT_EQ(res.config.halo_depth, 2);
  // The deck's tolerances survive routing; only structure is overlaid.
  EXPECT_EQ(res.config.eps, decks::hot_block(16, 1).solver.eps);
}

TEST(SolveServer, StaleHintBreakdownReroutesOnceAndCompletes) {
  SolveRequest req;
  req.deck = decks::hot_block(24, 1);
  req.nranks = 2;
  SolverConfig stale = req.deck.solver;
  stale.type = SolverType::kPPCG;
  // A below-spectrum interval with an odd inner-step count makes the
  // polynomial preconditioner indefinite: ⟨r, M⁻¹r⟩ < 0 at the restart,
  // the deterministic rz-breakdown (true spectrum here is ≈ [1, 3]).
  stale.inner_steps = 3;
  stale.eig_hint_min = 0.1;
  stale.eig_hint_max = 0.2;
  req.config = stale;

  ServerOptions no_retry;
  no_retry.reroute_on_failure = false;
  SolveServer failing(std::move(no_retry));
  const SolveResult broken = failing.solve_one(req);
  EXPECT_TRUE(broken.stats.breakdown);
  EXPECT_FALSE(broken.ok());

  SolveServer server;
  const SolveResult res = server.solve_one(req);
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(res.rerouted);
  EXPECT_EQ(res.attempts, 2);
  EXPECT_FALSE(res.config.has_eig_hints());
  EXPECT_EQ(server.stats().reroutes, 1);

  // The retry replays the request from intact fields: bitwise equal to
  // never having hinted at all.
  SolveRequest clean = req;
  clean.config->eig_hint_min = clean.config->eig_hint_max = 0.0;
  SolveServer reference;
  const SolveResult ref = reference.solve_one(clean);
  EXPECT_EQ(res.stats.final_norm, ref.stats.final_norm);
  EXPECT_EQ(res.stats.outer_iters, ref.stats.outer_iters);
}

/// Regression for the re-route double-count: a run whose every step
/// breaks down once and retries must report the SAME total_outer_iters
/// as a run that never failed — failed-attempt iterations live in their
/// own counter.
TEST(SolveServer, RunCountsFinalAttemptsOnlyAfterReroutes) {
  InputDeck clean = decks::hot_block(20, 3);
  clean.solver.type = SolverType::kPPCG;
  clean.solver.inner_steps = 3;
  InputDeck stale = clean;
  stale.solver.eig_hint_min = 0.1;
  stale.solver.eig_hint_max = 0.2;

  SolveServer s1, s2;
  const RunResult ref = s1.run(clean, 2);
  const RunResult rerouted = s2.run(stale, 2);
  ASSERT_TRUE(ref.all_converged);
  ASSERT_TRUE(rerouted.all_converged);
  EXPECT_EQ(rerouted.reroutes, 3);
  EXPECT_EQ(ref.reroutes, 0);
  EXPECT_EQ(rerouted.total_outer_iters, ref.total_outer_iters);
  EXPECT_GT(rerouted.total_failed_attempt_iters, 0);
  EXPECT_EQ(rerouted.final_summary.temp, ref.final_summary.temp);
}

/// The precision-safety regression: an fp64 request and a mixed request of
/// the SAME geometry submitted through the server must never share a
/// session — the shape key carries the precision, so the fp64 stream stays
/// bitwise identical to a server that never saw reduced precision (no
/// shared fp32 bank, no cross-precision eigenvalue memo).
TEST(ServerPrecision, SessionsNeverSharedAcrossPrecisions) {
  InputDeck base = decks::hot_block(24, 1);
  base.solver.type = SolverType::kChebyshev;
  InputDeck mixed = base;
  mixed.solver.precision = Precision::kMixed;
  const auto make = [](const InputDeck& d, const std::string& tag) {
    SolveRequest r;
    r.deck = d;
    r.nranks = 2;
    r.tag = tag;
    return r;
  };

  SolveServer server, reference;
  server.submit(make(base, "d0"));
  server.submit(make(mixed, "m0"));
  server.submit(make(base, "d1"));
  const std::vector<SolveResult> first = server.drain();
  ASSERT_EQ(first.size(), 3u);
  for (const SolveResult& r : first) EXPECT_TRUE(r.ok());

  reference.submit(make(base, "d0"));
  reference.submit(make(base, "d1"));
  const std::vector<SolveResult> ref_first = reference.drain();

  // The fp64 members batch together exactly as if the mixed request were
  // never submitted; the mixed member solves solo in its own session.
  EXPECT_TRUE(first[0].batched);
  EXPECT_EQ(first[0].stats.final_norm, ref_first[0].stats.final_norm);
  EXPECT_EQ(first[0].stats.outer_iters, ref_first[0].stats.outer_iters);
  EXPECT_FALSE(first[1].batched);
  EXPECT_EQ(first[1].config.precision, Precision::kMixed);
  EXPECT_TRUE(first[1].stats.converged);
  EXPECT_LE(first[1].stats.refine_steps, 12);

  // Second drain: the fp64 request reuses the fp64 session's eigenvalue
  // memo, not the mixed one's — still bitwise equal to the clean server.
  const SolveResult second = server.solve_one(make(base, "d2"));
  const SolveResult ref_second = reference.solve_one(make(base, "d2"));
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.stats.final_norm, ref_second.stats.final_norm);
  EXPECT_EQ(second.stats.outer_iters, ref_second.stats.outer_iters);
  EXPECT_EQ(second.stats.eigen_cg_iters, ref_second.stats.eigen_cg_iters);
}

/// run_solver_team is fp64-only, so reduced-precision members of a drain
/// group bypass the team engine and solve solo — bitwise identical to a
/// lone session solving the same deck.
TEST(ServerPrecision, ReducedPrecisionMembersBypassTheTeamEngine) {
  InputDeck deck = decks::hot_block(24, 1);
  deck.solver.precision = Precision::kMixed;
  SolveServer server;
  for (int i = 0; i < 2; ++i) {
    SolveRequest req;
    req.deck = deck;
    req.nranks = 2;
    req.tag = "mixed-" + std::to_string(i);
    server.submit(std::move(req));
  }
  const std::vector<SolveResult> results = server.drain();
  ASSERT_EQ(results.size(), 2u);
  SolveSession solo(deck, 2);
  const SolveStats ref = solo.solve();
  for (const SolveResult& r : results) {
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r.batched);
    EXPECT_EQ(r.config.precision, Precision::kMixed);
    EXPECT_EQ(r.stats.final_norm, ref.final_norm);
    EXPECT_EQ(r.stats.outer_iters, ref.outer_iters);
    EXPECT_EQ(r.stats.refine_steps, ref.refine_steps);
  }
  EXPECT_EQ(server.stats().batched_requests, 0);
}

/// A sweep-measured mixed cell routes like any other: the routed config
/// carries the precision, the label carries the "/mixed" suffix, and an
/// (invalid) mg-pcg reduced-precision cell is filtered by validation.
TEST(ServerPrecision, RoutesMixedCellsAndFiltersDoubleOnlyBaselines) {
  SweepReport rep = synthetic_report();
  SweepOutcome cell;
  cell.config.solver = "cg";
  cell.config.mesh_n = 16;
  cell.config.fused = true;
  cell.config.dims = 2;
  cell.config.precision = "mixed";
  cell.converged = true;
  cell.iterations = 30;
  cell.solve_seconds = 0.005;  // fastest measured cell of this shape
  rep.cells.push_back(cell);
  SweepOutcome bad = cell;
  bad.config.solver = "mg-pcg";
  bad.config.precision = "single";
  bad.solve_seconds = 0.001;
  rep.cells.push_back(bad);

  RoutingTable table = RoutingTable::from_sweep(rep);
  const std::vector<RouteEntry> ranked = table.route(2, 16, 1);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked.front().label(), "cg/none/d1/n16/fused/mixed");
  EXPECT_EQ(ranked.front().config.precision, Precision::kMixed);
  for (const RouteEntry& e : ranked) {
    if (e.solver == "mg-pcg") {
      EXPECT_EQ(e.config.precision, Precision::kDouble);
    }
  }

  ServerOptions opts;
  opts.routes = std::move(table);
  SolveServer server(std::move(opts));
  SolveRequest req;
  req.deck = decks::hot_block(16, 1);
  req.nranks = 2;
  const SolveResult res = server.solve_one(req);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.route_label, "cg/none/d1/n16/fused/mixed");
  EXPECT_EQ(res.config.type, SolverType::kCG);
  EXPECT_EQ(res.config.precision, Precision::kMixed);
  EXPECT_FALSE(res.batched);
  EXPECT_LE(res.stats.final_norm,
            res.config.eps * res.stats.initial_norm);
}

}  // namespace
}  // namespace tealeaf
