#include <gtest/gtest.h>

#include "api/solve_api.hpp"
#include "driver/decks.hpp"
#include "driver/tealeaf_app.hpp"
#include "solvers/solver.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tealeaf {
namespace {

TEST(ProblemShape, KeyEncodesEverythingThatSizesACluster) {
  const InputDeck deck = decks::hot_block(24, 1);
  const ProblemShape s = ProblemShape::of(deck, 4, 2);
  EXPECT_EQ(s.key(), "2d/24x24x1/r4/h2");
  EXPECT_EQ(s, ProblemShape::of(deck, 4, 2));
  EXPECT_NE(s, ProblemShape::of(deck, 2, 2));
  EXPECT_NE(s, ProblemShape::of(deck, 4, 4));
  EXPECT_NE(s, ProblemShape::of(decks::hot_block(32, 1), 4, 2));
}

TEST(SolveSession, SolveStepsTheProblemLikeTheDriver) {
  const InputDeck deck = decks::hot_block(24, 1);
  SolveSession session(deck, 2);
  const SolveStats st = session.solve();
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(session.solves_taken(), 1);
  EXPECT_GT(session.sim_time(), 0.0);

  // TeaLeafApp is a facade over a session: one step must agree bitwise.
  TeaLeafApp app(deck, 2);
  const SolveStats ref = app.step();
  EXPECT_EQ(st.final_norm, ref.final_norm);
  EXPECT_EQ(st.outer_iters, ref.outer_iters);
  EXPECT_EQ(session.field_summary().temp, app.field_summary().temp);
}

TEST(SolveSession, ResetReusesTheAllocationForSameShapeOnly) {
  SolveSession session(decks::hot_block(24, 1), 2);
  (void)session.solve();

  // Same 24×24 shape, different material: the cache-reuse path.
  session.reset(decks::layered_material(24, 1));
  EXPECT_EQ(session.solves_taken(), 0);
  const SolveStats st = session.solve();
  EXPECT_TRUE(st.converged);

  // A fresh session on the same deck must agree bitwise with the reused
  // one — reset leaves no residue.
  SolveSession fresh(decks::layered_material(24, 1), 2);
  EXPECT_EQ(fresh.solve().final_norm, st.final_norm);

  EXPECT_THROW(session.reset(decks::hot_block(32, 1)), TeaError);
}

TEST(SolveSession, EigenMemoFollowsTheOperator) {
  InputDeck deck = decks::hot_block(24, 1);
  deck.solver.type = SolverType::kPPCG;
  // Few enough presteps that the solve outlives the eigenvalue
  // estimation (converging inside the presteps leaves no estimate).
  deck.solver.eigen_cg_iters = 8;
  SolveSession session(deck, 2);
  EXPECT_FALSE(session.has_eig_estimate());
  const SolveStats st = session.solve();
  ASSERT_TRUE(st.converged);
  ASSERT_TRUE(session.has_eig_estimate());

  // Hints flow only into solvers that can use them.
  SolverConfig ppcg = deck.solver;
  EXPECT_TRUE(session.with_eig_hints(ppcg).has_eig_hints());
  SolverConfig cg = deck.solver;
  cg.type = SolverType::kCG;
  EXPECT_FALSE(session.with_eig_hints(cg).has_eig_hints());

  // A hinted repeat solve skips the CG presteps and still converges.
  session.reset(deck);
  const SolveStats hinted = session.solve(session.with_eig_hints(ppcg));
  EXPECT_TRUE(hinted.converged);
  EXPECT_EQ(hinted.eigen_cg_iters, 0);

  // Same deck text keeps the memo; any change clears it (new operator).
  session.reset(deck);
  EXPECT_TRUE(session.has_eig_estimate());
  session.reset(decks::layered_material(24, 1));
  EXPECT_FALSE(session.has_eig_estimate());
}

TEST(SessionCache, CountsHitsAndMissesPerBorrowedSession) {
  const InputDeck deck = decks::hot_block(24, 1);
  SessionCache cache(8);
  const std::vector<SolveSession*> first = cache.acquire(deck, 2, 2, 2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.hits(), 0);

  (void)cache.acquire(deck, 2, 2, 2);
  EXPECT_EQ(cache.hits(), 2);

  // Growing the borrow mixes hits (pooled) and misses (constructed).
  (void)cache.acquire(deck, 2, 2, 3);
  EXPECT_EQ(cache.hits(), 4);
  EXPECT_EQ(cache.misses(), 3);
  EXPECT_EQ(cache.shapes(), 1u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(SessionCache, EvictsLeastRecentShapeWholeWhenOverCapacity) {
  SessionCache cache(2);
  (void)cache.acquire(decks::hot_block(24, 1), 2, 2, 2);
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.acquire(decks::hot_block(32, 1), 2, 2, 1);
  // 24×24 (2 sessions) was least recent and the pool was over capacity:
  // evicted as a whole, never the shape just returned.
  EXPECT_EQ(cache.shapes(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolverConfigValidated, RejectsInconsistentCombosWithGuidance) {
  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  cfg.tile_rows = 64;
  cfg.fuse_kernels = false;
  EXPECT_THROW((void)cfg.validated(), TeaError);

  SolverConfig hints;
  hints.type = SolverType::kCG;
  hints.eig_hint_min = 1.0;
  hints.eig_hint_max = 5.0;
  EXPECT_THROW((void)hints.validated(), TeaError);

  SolverConfig ok;
  ok.type = SolverType::kPPCG;
  ok.fuse_kernels = true;
  ok.tile_rows = 16;
  EXPECT_NO_THROW((void)ok.validated());
}

TEST(DeprecatedShim, SolveLinearSystemStillDispatches) {
  auto a = testing::make_test_problem(16, 2, 2);
  auto b = testing::make_test_problem(16, 2, 2);
  SolverConfig cfg;
  cfg.type = SolverType::kCG;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const SolveStats legacy = solve_linear_system(*a, cfg);
#pragma GCC diagnostic pop
  const SolveStats current = run_solver(*b, cfg);
  EXPECT_EQ(legacy.final_norm, current.final_norm);
  EXPECT_EQ(legacy.outer_iters, current.outer_iters);
  EXPECT_EQ(testing::max_field_diff(*a, *b, FieldId::kU), 0.0);
}

}  // namespace
}  // namespace tealeaf
