#include <gtest/gtest.h>

#include "comm/gather.hpp"
#include "comm/sim_comm.hpp"

namespace tealeaf {
namespace {

/// Fill a field on every chunk with a function of the *global* cell index
/// so halo correctness can be checked against the analytic value.
void fill_global(SimCluster2D& cl, FieldId id, double scale = 1.0) {
  cl.for_each_chunk([&](int, Chunk2D& c) {
    auto& f = c.field(id);
    f.fill(-999.0);  // poison halos so stale reads are caught
    for (int k = 0; k < c.ny(); ++k)
      for (int j = 0; j < c.nx(); ++j)
        f(j, k) = scale * (1000.0 * (c.extent().y0 + k) +
                           (c.extent().x0 + j));
  });
}

double expected_global(const Chunk2D& c, int j, int k, double scale = 1.0) {
  return scale *
         (1000.0 * (c.extent().y0 + k) + (c.extent().x0 + j));
}

class ExchangeTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExchangeTest, HaloMatchesGlobalFunctionEverywhere) {
  const auto [nranks, depth] = GetParam();
  const GlobalMesh2D mesh(48, 48);
  SimCluster2D cl(mesh, nranks, depth);
  fill_global(cl, FieldId::kU);
  cl.exchange({FieldId::kU}, depth);

  for (int r = 0; r < cl.nranks(); ++r) {
    const Chunk2D& c = cl.chunk(r);
    const auto& f = c.field(FieldId::kU);
    // Every halo cell that lies inside the physical domain must hold the
    // neighbour's value, including corner cells (two-phase propagation).
    for (int k = -depth; k < c.ny() + depth; ++k) {
      for (int j = -depth; j < c.nx() + depth; ++j) {
        const int gj = c.extent().x0 + j;
        const int gk = c.extent().y0 + k;
        if (gj < 0 || gj >= mesh.nx || gk < 0 || gk >= mesh.ny) continue;
        EXPECT_DOUBLE_EQ(f(j, k), expected_global(c, j, k))
            << "rank " << r << " cell (" << j << "," << k << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndDecompositions, ExchangeTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 6, 9, 16),
                       ::testing::Values(1, 2, 3, 8)),
    [](const auto& info) {
      return "ranks" + std::to_string(std::get<0>(info.param)) + "_depth" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Exchange, MultipleFieldsTravelTogether) {
  const GlobalMesh2D mesh(24, 24);
  SimCluster2D cl(mesh, 4, 2);
  fill_global(cl, FieldId::kP, 1.0);
  fill_global(cl, FieldId::kSd, 3.0);
  cl.exchange({FieldId::kP, FieldId::kSd}, 2);
  const Chunk2D& c = cl.chunk(0);  // bottom-left chunk; right halo valid
  EXPECT_DOUBLE_EQ(c.field(FieldId::kP)(c.nx(), 0),
                   expected_global(c, c.nx(), 0, 1.0));
  EXPECT_DOUBLE_EQ(c.field(FieldId::kSd)(c.nx(), 0),
                   expected_global(c, c.nx(), 0, 3.0));
  // One exchange call, messages count fields once (packed together).
  EXPECT_EQ(cl.stats().exchange_calls, 1);
}

TEST(Exchange, MessageAndByteAccounting2x2) {
  const GlobalMesh2D mesh(16, 16);
  SimCluster2D cl(mesh, 4, 2);  // 2x2 ranks, 8x8 chunks
  cl.exchange({FieldId::kU}, 2);
  // Each rank has exactly one x-neighbour and one y-neighbour.
  EXPECT_EQ(cl.stats().messages, 8);
  // x message: depth·ny·8 = 2*8*8 = 128 B.  y rows carry corner columns
  // only toward the single x-neighbour (the other side is the physical
  // boundary and holds no exchanged data): depth·(nx+d)·8 = 2*10*8 = 160.
  EXPECT_EQ(cl.stats().message_bytes, 4 * 128 + 4 * 160);
  EXPECT_EQ(cl.stats().messages_by_depth.at(2), 8);
  EXPECT_EQ(cl.stats().exchange_calls, 1);
}

TEST(Exchange, ColumnDecompositionChargesNoCornerColumns) {
  // N×1 process grid (tall mesh → 1-wide column of ranks): every rank is
  // at both physical x-boundaries, so y rows must be charged at exactly
  // nx cells — the pre-fix accounting overcounted 2·depth per row.
  const GlobalMesh2D mesh(8, 40);
  SimCluster2D cl(mesh, 4, 2);  // 1x4 grid, 8x10 chunks
  ASSERT_EQ(cl.decomposition().px(), 1);
  ASSERT_EQ(cl.decomposition().py(), 4);
  cl.exchange({FieldId::kU}, 2);
  // 2 end ranks × 1 message + 2 middle ranks × 2 messages, no x traffic.
  EXPECT_EQ(cl.stats().messages, 6);
  EXPECT_EQ(cl.stats().message_bytes, 6 * 2 * 8 * 8);  // depth·nx·8 each
}

TEST(Exchange, RowDecompositionHasNoYTraffic) {
  // 1×N process grid: only x messages, each depth·ny·8 bytes; physical
  // top/bottom boundaries generate no messages at all.
  const GlobalMesh2D mesh(40, 8);
  SimCluster2D cl(mesh, 4, 3);  // 4x1 grid, 10x8 chunks
  ASSERT_EQ(cl.decomposition().px(), 4);
  ASSERT_EQ(cl.decomposition().py(), 1);
  cl.exchange({FieldId::kU}, 3);
  EXPECT_EQ(cl.stats().messages, 6);
  EXPECT_EQ(cl.stats().message_bytes, 6 * 3 * 8 * 8);  // depth·ny·8 each
}

TEST(Exchange, InteriorRanksStillChargeBothCorners) {
  // 3×3 grid: the centre rank has all four neighbours; its y rows carry
  // both corner blocks, so the per-rank y payload is depth·(nx+2d)·8.
  const GlobalMesh2D mesh(12, 12);
  SimCluster2D cl(mesh, 9, 2);  // 3x3 grid, 4x4 chunks
  ASSERT_EQ(cl.decomposition().px(), 3);
  cl.exchange({FieldId::kU}, 1);
  // x: 12 messages of 1·4·8 = 32 B.  y: 12 messages; rows of the left and
  // right process columns carry one corner (4+1 cells), the centre column
  // carries two (4+2 cells).
  const std::int64_t x_bytes = 12 * 32;
  const std::int64_t y_bytes = 8 * (4 + 1) * 8 + 4 * (4 + 2) * 8;
  EXPECT_EQ(cl.stats().messages, 24);
  EXPECT_EQ(cl.stats().message_bytes, x_bytes + y_bytes);
}

TEST(Exchange, DepthGreaterThanAllocationThrows) {
  const GlobalMesh2D mesh(16, 16);
  SimCluster2D cl(mesh, 4, 2);
  EXPECT_THROW(cl.exchange({FieldId::kU}, 3), TeaError);
}

TEST(Reduce, SumsPartialsInRankOrder) {
  const GlobalMesh2D mesh(16, 16);
  SimCluster2D cl(mesh, 4, 1);
  const double got = cl.reduce_sum({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(got, 10.0);
  EXPECT_EQ(cl.stats().reductions, 1);
  EXPECT_THROW(cl.reduce_sum({1.0}), TeaError);
}

TEST(Reduce, SumOverChunksCountsOneReduction) {
  const GlobalMesh2D mesh(12, 12);
  SimCluster2D cl(mesh, 9, 1);
  const double total = cl.sum_over_chunks(
      [](int, const Chunk2D& c) { return 1.0 * c.nx() * c.ny(); });
  EXPECT_DOUBLE_EQ(total, 144.0);
  EXPECT_EQ(cl.stats().reductions, 1);
}

TEST(GatherScatter, RoundTripsThroughGlobalView) {
  const GlobalMesh2D mesh(20, 14);
  SimCluster2D cl(mesh, 6, 1);
  Field2D<double> global(20, 14, 0);
  for (int k = 0; k < 14; ++k)
    for (int j = 0; j < 20; ++j) global(j, k) = j * 0.5 + k * 7.0;
  scatter_field(cl, FieldId::kEnergy1, global);
  const Field2D<double> back = gather_field(cl, FieldId::kEnergy1);
  for (int k = 0; k < 14; ++k)
    for (int j = 0; j < 20; ++j)
      EXPECT_DOUBLE_EQ(back(j, k), global(j, k));
}

TEST(Stats, ResetClearsEverything) {
  const GlobalMesh2D mesh(16, 16);
  SimCluster2D cl(mesh, 4, 1);
  cl.exchange({FieldId::kU}, 1);
  cl.reduce_sum({0, 0, 0, 0});
  cl.reset_stats();
  EXPECT_EQ(cl.stats().messages, 0);
  EXPECT_EQ(cl.stats().reductions, 0);
  EXPECT_EQ(cl.stats().exchange_calls, 0);
  EXPECT_TRUE(cl.stats().messages_by_depth.empty());
}

}  // namespace
}  // namespace tealeaf
