// The OperatorView contract: the assembled CSR / SELL-C-σ operators are
// alternative representations of the SAME linear operator the matrix-free
// stencil applies, and a matrix assembled from the stencil must reproduce
// the matrix-free solve bit for bit — same iteration counts, same residual
// norms, identical solution fields — in 2-D and 3-D, for every solver
// family and preconditioner.  Plus: the Matrix Market entry path (reader
// validation, round trip, triplet→CSR layout), the deck/sweep/server
// surface of the ninth design-space axis, and the scaling model's
// nnz-priced SpMV traffic.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>
#include <string>
#include <vector>

#include "api/solve_api.hpp"
#include "driver/deck.hpp"
#include "driver/decks.hpp"
#include "driver/sweep.hpp"
#include "io/matrix_market.hpp"
#include "model/machine.hpp"
#include "model/scaling.hpp"
#include "model/trace.hpp"
#include "ops/sparse_matrix.hpp"
#include "server/routing.hpp"
#include "server/solve_server.hpp"
#include "solvers/solver.hpp"
#include "test_helpers.hpp"

namespace tealeaf {
namespace {

using testing::install_operator;
using testing::make_test_problem;
using testing::make_test_problem_3d;
using testing::max_field_diff;

// ---- assembled ≡ matrix-free, whole-solver, both dimensions --------------

struct OpCase {
  SolverType type;
  PreconType precon;
  int dims;
};

class AssembledEquivalence : public ::testing::TestWithParam<OpCase> {};

TEST_P(AssembledEquivalence, BitwiseIdenticalToStencilSolve) {
  const OpCase oc = GetParam();
  SolverConfig cfg;
  cfg.type = oc.type;
  cfg.precon = oc.precon;
  cfg.eps = (oc.type == SolverType::kJacobi) ? 1e-5 : 1e-10;
  cfg.max_iters = (oc.type == SolverType::kJacobi) ? 100000 : 10000;

  const auto make = [&] {
    return oc.dims == 3 ? make_test_problem_3d(12, 2, 2, 4.0)
                        : make_test_problem(32, 4, 2, 8.0);
  };
  auto ref = make();
  const SolveStats ss = run_solver(*ref, cfg);
  ASSERT_TRUE(ss.converged);
  EXPECT_EQ(ss.nnz_per_row, 0.0);  // stencil runs carry no fill

  for (const OperatorKind op :
       {OperatorKind::kCsr, OperatorKind::kSellCSigma}) {
    auto cl = make();
    install_operator(*cl, op);
    SolverConfig acfg = cfg;
    acfg.op = op;
    const SolveStats sa = run_solver(*cl, acfg);
    ASSERT_TRUE(sa.converged) << to_string(op);
    // The assembled matrix stores the stencil's own values in the
    // stencil's own accumulation order (signed off-diagonals, boundary
    // zeros kept, pairwise grouping) — nothing may differ, not even ULPs.
    EXPECT_EQ(sa.outer_iters, ss.outer_iters) << to_string(op);
    EXPECT_EQ(sa.inner_steps, ss.inner_steps) << to_string(op);
    EXPECT_EQ(sa.eigen_cg_iters, ss.eigen_cg_iters) << to_string(op);
    EXPECT_EQ(sa.initial_norm, ss.initial_norm) << to_string(op);
    EXPECT_EQ(sa.final_norm, ss.final_norm) << to_string(op);
    EXPECT_EQ(max_field_diff(*ref, *cl, FieldId::kU), 0.0) << to_string(op);
    // Fill of the kept-zero stencil assembly is exactly the stencil arity.
    EXPECT_EQ(sa.nnz_per_row, oc.dims == 3 ? 7.0 : 5.0) << to_string(op);
    // Identical data motion: SpMV gathers through the same halo cells.
    EXPECT_EQ(cl->stats().message_bytes, ref->stats().message_bytes)
        << to_string(op);
    EXPECT_EQ(cl->stats().reductions, ref->stats().reductions)
        << to_string(op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSolversPreconsAndDims, AssembledEquivalence,
    ::testing::Values(
        OpCase{SolverType::kJacobi, PreconType::kNone, 2},
        OpCase{SolverType::kCG, PreconType::kNone, 2},
        OpCase{SolverType::kCG, PreconType::kJacobiDiag, 2},
        OpCase{SolverType::kCG, PreconType::kJacobiBlock, 2},
        OpCase{SolverType::kChebyshev, PreconType::kNone, 2},
        OpCase{SolverType::kChebyshev, PreconType::kJacobiDiag, 2},
        OpCase{SolverType::kChebyshev, PreconType::kJacobiBlock, 2},
        OpCase{SolverType::kPPCG, PreconType::kNone, 2},
        OpCase{SolverType::kPPCG, PreconType::kJacobiDiag, 2},
        OpCase{SolverType::kPPCG, PreconType::kJacobiBlock, 2},
        OpCase{SolverType::kJacobi, PreconType::kNone, 3},
        OpCase{SolverType::kCG, PreconType::kNone, 3},
        OpCase{SolverType::kCG, PreconType::kJacobiDiag, 3},
        OpCase{SolverType::kCG, PreconType::kJacobiBlock, 3},
        OpCase{SolverType::kChebyshev, PreconType::kJacobiDiag, 3},
        OpCase{SolverType::kPPCG, PreconType::kNone, 3},
        OpCase{SolverType::kPPCG, PreconType::kJacobiBlock, 3}),
    [](const auto& info) {
      const OpCase& oc = info.param;
      return std::string(to_string(oc.type)) + "_" + to_string(oc.precon) +
             "_" + std::to_string(oc.dims) + "d";
    });

// ---- assembled matrix structure ------------------------------------------

TEST(AssembleFromStencil, LayoutMatchesTheBitwiseContract) {
  auto cl = make_test_problem(8, 1, 2, 4.0);
  const Chunk& c = cl->chunk(0);
  const CsrMatrix m = assemble_from_stencil(c);
  ASSERT_EQ(m.nrows, 64);
  EXPECT_EQ(m.nnz(), 64 * 5);  // boundary zeros kept: full arity everywhere
  EXPECT_EQ(m.nnz_per_row(), 5.0);
  EXPECT_EQ(m.row_reach, 1);  // 2-D: columns stay within adjacent rows

  const Field<double>& geom = c.u();
  for (int k = 0; k < 8; ++k) {
    for (int j = 0; j < 8; ++j) {
      const std::int64_t r = k * 8 + j;
      ASSERT_EQ(m.row_len(r), 5);
      const std::int64_t e = m.row_ptr[r];
      // Entry 0 is the (positive) diagonal at the row's own cell.
      EXPECT_EQ(m.cols[e], static_cast<std::int64_t>(geom.index(j, k, 0)));
      EXPECT_GT(m.vals[e], 0.0);
      // Off-diagonals are stored signed (≤ 0), zero exactly on the faces
      // that touch the physical boundary.
      for (int i = 1; i < 5; ++i) EXPECT_LE(m.vals[e + i], 0.0);
      EXPECT_EQ(m.vals[e + 1] == 0.0, k == 7);  // ky(k+1)
      EXPECT_EQ(m.vals[e + 2] == 0.0, k == 0);  // ky(k−1)
      EXPECT_EQ(m.vals[e + 3] == 0.0, j == 7);  // kx(j+1)
      EXPECT_EQ(m.vals[e + 4] == 0.0, j == 0);  // kx(j−1)
    }
  }
}

TEST(AssembleFromStencil, ThreeDRowsReachAcrossPlanes) {
  auto cl = make_test_problem_3d(6, 1, 2, 4.0);
  const CsrMatrix m = assemble_from_stencil(cl->chunk(0));
  EXPECT_EQ(m.nrows, 216);
  EXPECT_EQ(m.nnz_per_row(), 7.0);
  // One inter-plane hop moves the flattened (l·ny + k) row index by ny.
  EXPECT_EQ(m.row_reach, 6);
}

TEST(SellFromCsr, StoragePermutationPreservesEveryRowExactly) {
  auto cl = make_test_problem(12, 1, 2, 4.0);
  const CsrMatrix csr = assemble_from_stencil(cl->chunk(0));
  const SellMatrix s = sell_from_csr(csr, 8, 64);

  ASSERT_EQ(s.nrows, csr.nrows);
  EXPECT_EQ(s.chunk_c, 8);
  EXPECT_EQ(s.sigma, 64);
  EXPECT_EQ(s.row_reach, csr.row_reach);
  // Uniform row lengths: the σ sort is the identity and padding only
  // covers the ragged final slice (144 rows → 18 full slices, no pad).
  EXPECT_EQ(s.fill_ratio(), 1.0);

  std::vector<int> seen(static_cast<std::size_t>(s.nrows), 0);
  for (std::int64_t r = 0; r < s.nrows; ++r) {
    ASSERT_EQ(s.row_len[r], csr.row_len(r));
    const std::int64_t p = s.slot[r];
    ASSERT_GE(p, 0);
    ASSERT_LT(p, s.nrows);
    ++seen[static_cast<std::size_t>(p)];
    const std::int64_t base = s.slice_ptr[p / s.chunk_c] + p % s.chunk_c;
    for (int i = 0; i < s.row_len[r]; ++i) {
      const std::int64_t q = base + static_cast<std::int64_t>(i) * s.chunk_c;
      EXPECT_EQ(s.cols[q], csr.cols[csr.row_ptr[r] + i]);
      EXPECT_EQ(s.vals[q], csr.vals[csr.row_ptr[r] + i]);
    }
  }
  for (const int n : seen) EXPECT_EQ(n, 1);  // slot is a permutation
}

TEST(SellFromCsr, VariableRowLengthsSortWithinSigmaWindows) {
  // Ragged rows (FEM-like): row lengths 1..n within one σ window must be
  // stored descending so slice widths track the longest member, while the
  // slot map still finds every row's entries.
  CsrMatrix csr;
  csr.nrows = 10;
  csr.row_ptr.push_back(0);
  for (std::int64_t r = 0; r < csr.nrows; ++r) {
    const int len = static_cast<int>(r % 5) + 1;
    for (int i = 0; i < len; ++i) {
      csr.cols.push_back(r);  // columns don't matter for the layout
      csr.vals.push_back(100.0 * static_cast<double>(r) + i);
    }
    csr.row_ptr.push_back(static_cast<std::int64_t>(csr.vals.size()));
  }
  const SellMatrix s = sell_from_csr(csr, 4, 8);
  EXPECT_GT(s.fill_ratio(), 1.0);  // ragged rows genuinely pad now
  for (std::int64_t r = 0; r < csr.nrows; ++r) {
    const std::int64_t base = s.slice_ptr[s.slot[r] / 4] + s.slot[r] % 4;
    for (int i = 0; i < s.row_len[r]; ++i) {
      EXPECT_EQ(s.vals[base + static_cast<std::int64_t>(i) * 4],
                csr.vals[csr.row_ptr[r] + i]);
    }
  }
}

// ---- Matrix Market reader / writer ---------------------------------------

io::TripletMatrix laplacian5(int n, double diag = 5.0) {
  io::TripletMatrix m;
  m.n = static_cast<std::int64_t>(n) * n;
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const std::int64_t row = static_cast<std::int64_t>(k) * n + j;
      m.entries.push_back({row, row, diag});
      if (j > 0) m.entries.push_back({row, row - 1, -1.0});
      if (j < n - 1) m.entries.push_back({row, row + 1, -1.0});
      if (k > 0) m.entries.push_back({row, row - n, -1.0});
      if (k < n - 1) m.entries.push_back({row, row + n, -1.0});
    }
  }
  return m;
}

TEST(MatrixMarket, WriteReadRoundTripIsExact) {
  const io::TripletMatrix m = laplacian5(4, 4.0 + 1.0 / 3.0);
  std::ostringstream os;
  io::write_matrix_market(os, m);
  std::istringstream is(os.str());
  const io::TripletMatrix back = io::read_matrix_market(is);
  ASSERT_EQ(back.n, m.n);
  ASSERT_EQ(back.entries.size(), m.entries.size());
  // Entry order is a representation detail; the matrix — each (row, col)
  // and its value, to the last bit (%.17g) — must survive unchanged.
  const auto canonical = [](io::TripletMatrix t) {
    std::sort(t.entries.begin(), t.entries.end(),
              [](const auto& a, const auto& b) {
                return std::pair(a.row, a.col) < std::pair(b.row, b.col);
              });
    return t;
  };
  const io::TripletMatrix ms = canonical(m), bs = canonical(back);
  for (std::size_t i = 0; i < ms.entries.size(); ++i) {
    EXPECT_EQ(bs.entries[i].row, ms.entries[i].row);
    EXPECT_EQ(bs.entries[i].col, ms.entries[i].col);
    EXPECT_EQ(bs.entries[i].val, ms.entries[i].val);
  }
}

TEST(MatrixMarket, SymmetricFilesExpandTheStoredTriangle) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% lower triangle of a 2x2 SPD system\n"
      "2 2 3\n"
      "1 1 4.0\n"
      "2 1 -1.0\n"
      "2 2 4.0\n");
  const io::TripletMatrix m = io::read_matrix_market(is);
  EXPECT_EQ(m.n, 2);
  ASSERT_EQ(m.entries.size(), 4u);  // mirror of (2,1) added
  double a01 = 0.0, a10 = 0.0;
  for (const auto& e : m.entries) {
    if (e.row == 0 && e.col == 1) a01 = e.val;
    if (e.row == 1 && e.col == 0) a10 = e.val;
  }
  EXPECT_EQ(a01, -1.0);
  EXPECT_EQ(a10, -1.0);
}

TEST(MatrixMarket, MalformedInputsAreRejectedNotGuessed) {
  const auto reject = [](const char* text) {
    std::istringstream is(text);
    EXPECT_THROW(io::read_matrix_market(is), TeaError) << text;
  };
  // Wrong banner: array format, complex field, missing header entirely.
  reject("%%MatrixMarket matrix array real general\n2 2\n1.0\n0.0\n");
  reject("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
  reject("1 1 1\n1 1 1.0\n");
  // Non-square size.
  reject("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n");
  // Out-of-range and duplicate indices.
  reject("%%MatrixMarket matrix coordinate real general\n2 2 2\n"
         "1 1 1.0\n3 1 1.0\n");
  reject("%%MatrixMarket matrix coordinate real general\n2 2 3\n"
         "1 1 1.0\n1 1 2.0\n2 2 1.0\n");
  // Fewer entries than the size line declares.
  reject("%%MatrixMarket matrix coordinate real general\n2 2 3\n"
         "1 1 1.0\n2 2 1.0\n");
  // 'general' that is not numerically symmetric: CG would silently
  // mis-converge, so the reader refuses.
  reject("%%MatrixMarket matrix coordinate real general\n2 2 4\n"
         "1 1 4.0\n1 2 -1.0\n2 1 -2.0\n2 2 4.0\n");
  // A row with no stored diagonal (the preconditioners divide by it).
  reject("%%MatrixMarket matrix coordinate real general\n2 2 2\n"
         "1 1 1.0\n1 2 0.5\n");
  // Unreadable path.
  EXPECT_THROW(io::load_matrix_market("/nonexistent/no_such.mtx"), TeaError);
}

TEST(MatrixMarket, CsrFromTripletsMapsRowsOntoTheGridDiagFirst) {
  auto cl = make_test_problem(4, 1, 2, 4.0);
  const Chunk& c = cl->chunk(0);
  const io::TripletMatrix trips = laplacian5(4);
  const CsrMatrix m = io::csr_from_triplets(trips, c);

  ASSERT_EQ(m.nrows, 16);
  EXPECT_EQ(m.row_reach, 1);
  const Field<double>& geom = c.u();
  for (std::int64_t r = 0; r < m.nrows; ++r) {
    const int j = static_cast<int>(r % 4), k = static_cast<int>(r / 4);
    const std::int64_t e = m.row_ptr[r];
    ASSERT_GT(m.row_len(r), 0);
    // Diagonal first (kernels and preconditioners rely on the slot)...
    EXPECT_EQ(m.cols[e], static_cast<std::int64_t>(geom.index(j, k, 0)));
    EXPECT_EQ(m.vals[e], 5.0);
    // ...then the off-diagonals in ascending column order.
    for (int i = 2; i < m.row_len(r); ++i) {
      EXPECT_LT(m.cols[e + i - 1], m.cols[e + i]);
    }
  }
  // Corner rows have 3 entries, edges 4, interior 5: no phantom zeros.
  EXPECT_EQ(m.row_len(0), 3);
  EXPECT_EQ(m.row_len(1), 4);
  EXPECT_EQ(m.row_len(5), 5);

  // The grid must match the matrix exactly.
  auto wrong = make_test_problem(5, 1, 2, 4.0);
  EXPECT_THROW(io::csr_from_triplets(trips, wrong->chunk(0)), TeaError);
}

// ---- deck surface --------------------------------------------------------

TEST(OperatorDeck, KeysParseAndRoundTrip) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\nx_cells=16\ny_cells=16\nend_step=1\n"
      "tl_operator=csr\nmatrix_file=system.mtx\n"
      "sweep_solvers=cg\nsweep_operator=stencil,csr,sell-c-sigma\n"
      "state 1 density=1.0 energy=1.0\n*endtea\n");
  EXPECT_EQ(deck.solver.op, OperatorKind::kCsr);
  EXPECT_EQ(deck.matrix_file, "system.mtx");
  EXPECT_EQ(deck.sweep.operators,
            (std::vector<std::string>{"stencil", "csr", "sell-c-sigma"}));
  const InputDeck back = InputDeck::parse_string(deck.to_string());
  EXPECT_EQ(back.solver.op, OperatorKind::kCsr);
  EXPECT_EQ(back.matrix_file, "system.mtx");
  EXPECT_EQ(back.sweep.operators, deck.sweep.operators);

  // The stencil default stays silent in to_string: legacy decks unchanged.
  const InputDeck plain = decks::hot_block(16, 1);
  EXPECT_EQ(plain.to_string().find("tl_operator"), std::string::npos);
  EXPECT_EQ(plain.to_string().find("matrix_file"), std::string::npos);
}

TEST(OperatorDeck, MistypedKeyAndBadValueFailLoudly) {
  try {
    InputDeck::parse_string(
        "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
        "tl_operater=csr\nstate 1 density=1 energy=1\n*endtea\n");
    FAIL() << "typo must not be silently ignored";
  } catch (const TeaError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown key 'tl_operater'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'tl_operator'"), std::string::npos)
        << msg;
  }
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "tl_operator=coo\nstate 1 density=1 energy=1\n*endtea\n"),
               TeaError);
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "sweep_solvers=cg\nsweep_operator=stencil,ellpack\n"
                   "state 1 density=1 energy=1\n*endtea\n"),
               TeaError);
}

TEST(OperatorDeck, MatrixFileValidationRejectsImpossibleCombinations) {
  // matrix_file without an assembled operator: nowhere to put the matrix.
  try {
    InputDeck deck = decks::hot_block(8, 1);
    deck.matrix_file = "system.mtx";
    deck.validate();
    FAIL() << "matrix_file on the stencil path must be rejected";
  } catch (const TeaError& e) {
    EXPECT_NE(std::string(e.what()).find("tl_operator = csr"),
              std::string::npos)
        << e.what();
  }
  // matrix_file on a 3-D deck: the rows map onto the 2-D grid only.
  InputDeck deck3 = decks::hot_block(8, 1);
  deck3.dims = 3;
  deck3.z_cells = 8;
  deck3.matrix_file = "system.mtx";
  deck3.solver.op = OperatorKind::kCsr;
  EXPECT_THROW(deck3.validate(), TeaError);
  // Assembled operators store interior rows only: no matrix-powers depth.
  SolverConfig cfg;
  cfg.type = SolverType::kPPCG;
  cfg.halo_depth = 4;
  cfg.op = OperatorKind::kCsr;
  EXPECT_THROW(cfg.validate(), TeaError);
}

// ---- session / cache shape key -------------------------------------------

TEST(OperatorShape, KeyAppendsTheKindAndLegacyKeysAreUnchanged) {
  InputDeck deck = decks::hot_block(16, 1);
  EXPECT_EQ(ProblemShape::of(deck, 4, 2).key(), "2d/16x16x1/r4/h2");
  deck.solver.op = OperatorKind::kCsr;
  EXPECT_EQ(ProblemShape::of(deck, 4, 2).key(), "2d/16x16x1/r4/h2/csr");
  deck.solver.op = OperatorKind::kSellCSigma;
  EXPECT_EQ(ProblemShape::of(deck, 4, 2).key(),
            "2d/16x16x1/r4/h2/sell-c-sigma");
}

TEST(OperatorSession, PrepareInstallsAndClearsAssembledOperators) {
  InputDeck deck = decks::hot_block(16, 1);
  deck.solver.op = OperatorKind::kCsr;
  SolveSession session(deck, 2);
  const SolveStats sa = session.solve();
  ASSERT_TRUE(sa.converged);
  EXPECT_EQ(sa.nnz_per_row, 5.0);
  session.cluster().for_each_chunk([](int, Chunk& c) {
    EXPECT_EQ(c.op_kind(), OperatorKind::kCsr);
    EXPECT_NE(c.csr(), nullptr);
  });

  // A stencil solve on the same session drops the assembled matrices.
  InputDeck plain = decks::hot_block(16, 1);
  SolveSession stencil_session(plain, 2);
  const SolveStats ss = stencil_session.solve();
  ASSERT_TRUE(ss.converged);
  EXPECT_EQ(ss.nnz_per_row, 0.0);
  EXPECT_EQ(sa.outer_iters, ss.outer_iters);
  EXPECT_EQ(sa.final_norm, ss.final_norm);
  SolverConfig back = deck.solver;
  back.op = OperatorKind::kStencil;
  const SolveStats s2 = session.solve(back);
  ASSERT_TRUE(s2.converged);
  session.cluster().for_each_chunk([](int, Chunk& c) {
    EXPECT_EQ(c.op_kind(), OperatorKind::kStencil);
    EXPECT_EQ(c.csr(), nullptr);
  });
}

// ---- sweep ninth axis ----------------------------------------------------

TEST(SweepOperatorAxis, EnumeratesInnermostAndLabels) {
  SweepSpec spec;
  spec.solvers = {"cg"};
  spec.operators = {"stencil", "csr", "sell-c-sigma"};
  const std::vector<SweepCase> cases = enumerate_cases(spec, 16);
  ASSERT_EQ(cases.size(), 3u);
  ASSERT_EQ(spec.num_cases(), 3u);
  EXPECT_EQ(cases[0].label(), "cg/none/d1/n16/t0");
  EXPECT_EQ(cases[1].label(), "cg/none/d1/n16/t0/csr");
  EXPECT_EQ(cases[2].label(), "cg/none/d1/n16/t0/sell-c-sigma");
  spec.operators = {"csc"};
  EXPECT_THROW(spec.validate(), TeaError);
}

TEST(SweepOperatorAxis, AssembledCellsMatchStencilAndRoundTrip) {
  InputDeck base = decks::hot_block(16, 1);
  base.solver.eps = 1e-8;
  SweepSpec spec;
  spec.solvers = {"cg", "mg-pcg"};
  spec.operators = {"stencil", "csr", "sell-c-sigma"};
  spec.ranks = 2;
  const SweepReport rep = run_sweep(base, spec);
  ASSERT_EQ(rep.cells.size(), 6u);

  // cg: all three representations run and agree bit for bit.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(rep.cells[i].skipped) << rep.cells[i].config.label();
    EXPECT_TRUE(rep.cells[i].converged) << rep.cells[i].config.label();
  }
  EXPECT_EQ(rep.cells[1].config.op, "csr");
  EXPECT_EQ(rep.cells[1].iterations, rep.cells[0].iterations);
  EXPECT_EQ(rep.cells[1].final_norm, rep.cells[0].final_norm);
  EXPECT_EQ(rep.cells[2].final_norm, rep.cells[0].final_norm);
  EXPECT_EQ(rep.cells[1].message_bytes, rep.cells[0].message_bytes);

  // mg-pcg rebuilds its hierarchy from the face coefficients: only the
  // stencil cell runs, the assembled cells are skipped with a reason.
  EXPECT_FALSE(rep.cells[3].skipped);
  EXPECT_TRUE(rep.cells[4].skipped);
  EXPECT_TRUE(rep.cells[5].skipped);
  EXPECT_NE(rep.cells[4].skip_reason.find("assembled"), std::string::npos);

  // Converged assembled cells take part in the ranking.
  const std::vector<int> ranked = rep.ranking();
  EXPECT_EQ(ranked.size(), 4u);

  // The operator column survives both serialisation round trips.
  EXPECT_NE(rep.to_csv_lines()[0].find("operator"), std::string::npos);
  const SweepReport csv_back = SweepReport::from_csv_lines(rep.to_csv_lines());
  const SweepReport json_back =
      SweepReport::from_json_string(rep.to_json().dump(2));
  for (std::size_t i = 0; i < rep.cells.size(); ++i) {
    EXPECT_EQ(csv_back.cells[i].config.op, rep.cells[i].config.op);
    EXPECT_EQ(json_back.cells[i].config.op, rep.cells[i].config.op);
    EXPECT_EQ(csv_back.cells[i].config.label(), rep.cells[i].config.label());
  }
}

// ---- routing and the solve server ----------------------------------------

TEST(OperatorRouting, LabelsCarryTheKindAndMgPcgRejectsAssembled) {
  RouteEntry e;
  e.solver = "cg";
  e.config.type = SolverType::kCG;
  e.config.op = OperatorKind::kCsr;
  e.mesh_n = 16;
  EXPECT_NE(e.label().find("/csr"), std::string::npos);
  (void)e.validated();  // a native assembled entry is routable

  RouteEntry mg;
  mg.solver = "mg-pcg";
  mg.config.op = OperatorKind::kCsr;
  mg.mesh_n = 16;
  try {
    (void)mg.validated();
    FAIL() << "mg-pcg has no assembled-operator form";
  } catch (const TeaError& err) {
    EXPECT_NE(std::string(err.what()).find("stencil"), std::string::npos)
        << err.what();
  }
}

TEST(OperatorServer, MatrixMarketDeckSolvesEndToEnd) {
  const std::string path = ::testing::TempDir() + "operator_server.mtx";
  io::save_matrix_market(path, laplacian5(8));

  SolveServer server;
  double csr_norm = 0.0;
  for (const OperatorKind op :
       {OperatorKind::kCsr, OperatorKind::kSellCSigma}) {
    SolveRequest req;
    req.deck.x_cells = 8;
    req.deck.y_cells = 8;
    req.deck.end_step = 1;
    req.deck.matrix_file = path;
    req.deck.solver.type = SolverType::kCG;
    req.deck.solver.op = op;
    req.deck.states.push_back({});
    req.deck.validate();
    req.nranks = 1;
    req.tag = to_string(op);
    const SolveResult res = server.solve_one(std::move(req));
    ASSERT_TRUE(res.ok()) << to_string(op);
    // Loaded Laplacian: 5·64 − 4·8 = 288 entries over 64 rows (true row
    // lengths — no kept zeros on the file path).
    EXPECT_EQ(res.stats.nnz_per_row, 288.0 / 64.0) << to_string(op);
    if (op == OperatorKind::kCsr) {
      csr_norm = res.stats.final_norm;
    } else {
      EXPECT_EQ(res.stats.final_norm, csr_norm);  // storage permutation
    }
  }
  std::remove(path.c_str());
}

// ---- scaling model: nnz-priced SpMV --------------------------------------

TEST(OperatorModel, AssembledFillPricesSpmvFromMeasuredNnz) {
  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  SolveStats stats;
  stats.outer_iters = 200;
  stats.nnz_per_row = 5.0;
  SolverRunSummary run = SolverRunSummary::from(cfg, stats, 1024);
  EXPECT_EQ(run.nnz_per_row, 5.0);

  const GlobalMesh2D mesh(1024, 1024);
  const ScalingModel model(machines::spruce_hybrid(), mesh, 1);
  SolverRunSummary stencil = run;
  stencil.nnz_per_row = 0.0;
  // 5 nnz/row streams 16·5 + 16 = 96 B/cell per SpMV against the
  // stencil's 32: the assembled prediction must be strictly slower, and
  // monotone in the fill.
  EXPECT_GT(model.run_seconds(run, 1), model.run_seconds(stencil, 1));
  SolverRunSummary denser = run;
  denser.nnz_per_row = 9.0;
  EXPECT_GT(model.run_seconds(denser, 1), model.run_seconds(run, 1));
}

}  // namespace
}  // namespace tealeaf
