#pragma once

#include <cmath>
#include <memory>

#include "comm/gather.hpp"
#include "comm/sim_comm.hpp"
#include "ops/kernels.hpp"
#include "ops/sparse_matrix.hpp"
#include "util/numeric.hpp"

namespace tealeaf::testing {

/// Deterministic, decomposition-independent material: density and energy
/// are functions of the *global* cell index (smooth bands plus a hashed
/// perturbation), so any rank layout sees exactly the same problem.
inline double test_density(int gj, int gk) {
  SplitMix64 h(static_cast<std::uint64_t>(gj) * 2654435761u +
               static_cast<std::uint64_t>(gk) * 40503u + 17u);
  const double bump = 0.5 * h.next_double();
  return 1.0 + 0.5 * std::sin(0.3 * gj) * std::cos(0.2 * gk) + bump;
}

inline double test_energy(int gj, int gk) {
  return 1.0 + 0.8 * std::exp(-0.01 * ((gj - 10) * (gj - 10) +
                                       (gk - 12) * (gk - 12)));
}

/// Build a cluster over an n×n mesh, fill the material fields with the
/// deterministic test problem, exchange them and initialise u/u0/Kx/Ky —
/// ready for any solver.  `rx_ry` controls the conditioning (larger =
/// harder).
inline std::unique_ptr<SimCluster2D> make_test_problem(
    int n, int nranks, int halo_depth, double rx_ry = 4.0) {
  const GlobalMesh2D mesh(n, n, 0.0, 10.0, 0.0, 10.0);
  auto cl = std::make_unique<SimCluster2D>(mesh, nranks, halo_depth);
  cl->for_each_chunk([&](int, Chunk2D& c) {
    for (int k = 0; k < c.ny(); ++k) {
      for (int j = 0; j < c.nx(); ++j) {
        const int gj = c.extent().x0 + j;
        const int gk = c.extent().y0 + k;
        c.density()(j, k) = test_density(gj, gk);
        c.energy()(j, k) = test_energy(gj, gk);
      }
    }
  });
  cl->exchange({FieldId::kDensity, FieldId::kEnergy1}, halo_depth);
  cl->for_each_chunk([&](int, Chunk2D& c) {
    kernels::init_u_u0(c);
    kernels::init_conduction(c, kernels::Coefficient::kConductivity, rx_ry,
                             rx_ry);
  });
  cl->reset_stats();
  return cl;
}

/// Install the requested operator representation on every chunk of a
/// ready-to-solve cluster: assemble the conduction stencil to CSR (plus
/// the SELL-C-σ re-layout when asked for) so run_solver exercises the
/// assembled SpMV paths, or drop back to the matrix-free stencil.  This
/// is the test-side stand-in for SolveSession::prepare.
inline void install_operator(SimCluster& cl, OperatorKind op) {
  cl.for_each_chunk([&](int, Chunk& c) {
    if (op == OperatorKind::kStencil) {
      c.clear_assembled_operator();
      return;
    }
    auto csr = std::make_shared<const CsrMatrix>(assemble_from_stencil(c));
    auto sell = op == OperatorKind::kSellCSigma
                    ? std::make_shared<const SellMatrix>(sell_from_csr(*csr))
                    : std::shared_ptr<const SellMatrix>{};
    c.set_assembled_operator(op, std::move(csr), std::move(sell));
  });
}

/// Relative residual ‖u0 − A·u‖ / ‖u0‖ over the whole cluster, computed
/// from scratch (independent of any solver-internal bookkeeping).
inline double relative_residual(SimCluster2D& cl) {
  cl.exchange({FieldId::kU}, 1);
  const double rr = cl.sum_over_chunks(
      [](int, Chunk2D& c) { return kernels::calc_residual(c); });
  const double bb = cl.sum_over_chunks([](int, const Chunk2D& c) {
    return kernels::norm2_sq(c, FieldId::kU0);
  });
  return std::sqrt(rr / bb);
}

/// Max |a − b| over the global views of a field on two clusters (either
/// dimension).
inline double max_field_diff(const SimCluster& a, const SimCluster& b,
                             FieldId id) {
  const Field<double> fa = gather_field(a, id);
  const Field<double> fb = gather_field(b, id);
  double worst = 0.0;
  for (int l = 0; l < fa.nz(); ++l)
    for (int k = 0; k < fa.ny(); ++k)
      for (int j = 0; j < fa.nx(); ++j)
        worst = std::max(worst, std::fabs(fa(j, k, l) - fb(j, k, l)));
  return worst;
}

/// A single-plane 3-D cluster carrying exactly the 2-D test problem: same
/// material per (j, k) cell, same decomposition inputs.  The slab the
/// cross-dimension equality tests (test_geometry3d, the 3-D multigrid
/// suite in test_amg) solve: Kz ≡ 0, so the 7-point operator degenerates
/// to the 5-point one and every per-iteration scalar must reproduce the
/// 2-D solver's exactly.
inline std::unique_ptr<SimCluster> make_test_problem_slab3d(
    int n, int nranks, int halo_depth, double rx_ry = 4.0) {
  const GlobalMesh mesh =
      GlobalMesh::make3d(n, n, 1, 0.0, 10.0, 0.0, 10.0, 0.0, 10.0);
  auto cl = std::make_unique<SimCluster>(mesh, nranks, halo_depth);
  cl->for_each_chunk([&](int, Chunk& c) {
    for (int k = 0; k < c.ny(); ++k) {
      for (int j = 0; j < c.nx(); ++j) {
        const int gj = c.extent().x0 + j;
        const int gk = c.extent().y0 + k;
        c.density()(j, k, 0) = test_density(gj, gk);
        c.energy()(j, k, 0) = test_energy(gj, gk);
      }
    }
  });
  cl->exchange({FieldId::kDensity, FieldId::kEnergy1}, halo_depth);
  cl->for_each_chunk([&](int, Chunk& c) {
    kernels::init_u_u0(c);
    // rz scales Kz, which is identically zero on a single plane (both z
    // faces are physical boundaries) — any value gives the same operator.
    kernels::init_conduction(c, kernels::Coefficient::kConductivity, rx_ry,
                             rx_ry, rx_ry);
  });
  cl->reset_stats();
  return cl;
}

/// 3-D companion of make_test_problem: an n³ brick with a deterministic,
/// decomposition-independent material, ready for any solver.
inline std::unique_ptr<SimCluster> make_test_problem_3d(
    int n, int nranks, int halo_depth, double rxyz = 4.0) {
  auto cl = std::make_unique<SimCluster>(
      GlobalMesh::brick3d(n, n, n, 10.0), nranks, halo_depth);
  cl->for_each_chunk([&](int, Chunk& c) {
    for (int l = 0; l < c.nz(); ++l) {
      for (int k = 0; k < c.ny(); ++k) {
        for (int j = 0; j < c.nx(); ++j) {
          const int gj = c.extent().x0 + j;
          const int gk = c.extent().y0 + k;
          const int gl = c.extent().z0 + l;
          c.density()(j, k, l) = test_density(gj, gk + 31 * gl);
          c.energy()(j, k, l) = test_energy(gj + 17 * gl, gk);
        }
      }
    }
  });
  cl->exchange({FieldId::kDensity, FieldId::kEnergy1}, halo_depth);
  cl->for_each_chunk([&](int, Chunk& c) {
    kernels::init_u_u0(c);
    kernels::init_conduction(c, kernels::Coefficient::kConductivity, rxyz,
                             rxyz, rxyz);
  });
  cl->reset_stats();
  return cl;
}

}  // namespace tealeaf::testing
