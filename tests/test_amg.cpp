#include <gtest/gtest.h>

#include <cmath>

#include "amg/mg_pcg.hpp"
#include "amg/multigrid.hpp"
#include "comm/sim_comm.hpp"
#include "ops/kernels.hpp"
#include "solvers/cg.hpp"
#include "test_helpers.hpp"

namespace tealeaf {
namespace {

using testing::make_test_problem;

/// Build a single-chunk problem and return (cluster, chunk&) with kx/ky
/// initialised — the MG solvers take their coefficients from the chunk.
std::unique_ptr<SimCluster2D> mg_problem(int n, double rx_ry = 8.0) {
  return make_test_problem(n, 1, 2, rx_ry);
}

TEST(Multigrid, HierarchyShrinksToCoarseFloor) {
  auto cl = mg_problem(64);
  const Chunk2D& c = cl->chunk(0);
  Multigrid2D mg(c.kx(), c.ky(), c.nx(), c.ny());
  ASSERT_GE(mg.num_levels(), 4);
  EXPECT_EQ(mg.level(0).nx, 64);
  EXPECT_EQ(mg.level(1).nx, 32);
  EXPECT_LE(mg.level(mg.num_levels() - 1).nx, 4);
  // Coefficients restrict positively and shrink by the 1/4 rescale.
  EXPECT_GT(mg.level(1).kx(1, 1), 0.0);
  EXPECT_LT(mg.level(1).kx(1, 1), mg.level(0).kx(2, 2) * 2.0);
}

TEST(Multigrid, VCycleContractsResidual) {
  auto cl = mg_problem(64);
  const Chunk2D& c = cl->chunk(0);
  Multigrid2D mg(c.kx(), c.ky(), c.nx(), c.ny());
  const MGLevel& lv = mg.level(0);

  Field2D<double> rhs(64, 64, 1, 0.0);
  for (int k = 0; k < 64; ++k)
    for (int j = 0; j < 64; ++j)
      rhs(j, k) = std::sin(0.2 * j) * std::cos(0.15 * k);
  Field2D<double> u(64, 64, 1, 0.0);

  const auto resnorm = [&] {
    double rr = 0.0;
    for (int k = 0; k < 64; ++k) {
      for (int j = 0; j < 64; ++j) {
        const double r = rhs(j, k) - Multigrid2D::apply_stencil(lv, u, j, k);
        rr += r * r;
      }
    }
    return std::sqrt(rr);
  };

  const double r0 = resnorm();
  Field2D<double> z(64, 64, 1, 0.0);
  mg.v_cycle(rhs, z);
  for (int k = 0; k < 64; ++k)
    for (int j = 0; j < 64; ++j) u(j, k) += z(j, k);
  const double r1 = resnorm();
  EXPECT_LT(r1, 0.5 * r0) << "one V-cycle must contract the residual";
}

TEST(MGPCG, SolvesToTolerance) {
  auto cl = mg_problem(48);
  Chunk2D& c = cl->chunk(0);
  auto solver = MGPreconditionedCG::from_chunk(c);
  Field2D<double> u(48, 48, 1, 0.0);
  c.u0().copy_interior_from(c.u());  // u0 = ρe from the fixture
  Field2D<double> rhs(48, 48, 0, 0.0);
  for (int k = 0; k < 48; ++k)
    for (int j = 0; j < 48; ++j) rhs(j, k) = c.u0()(j, k);
  const MGPCGResult res = solver.solve(rhs, u);
  EXPECT_TRUE(res.converged);
  // Independent residual check.
  Multigrid2D mg(c.kx(), c.ky(), 48, 48);
  double rr = 0.0, bb = 0.0;
  for (int k = 0; k < 48; ++k) {
    for (int j = 0; j < 48; ++j) {
      const double r =
          rhs(j, k) - Multigrid2D::apply_stencil(mg.level(0), u, j, k);
      rr += r * r;
      bb += rhs(j, k) * rhs(j, k);
    }
  }
  EXPECT_LT(std::sqrt(rr / bb), 1e-8);
}

TEST(MGPCG, MatchesTeaLeafCGSolution) {
  auto cl = mg_problem(40, 16.0);
  Chunk2D& c = cl->chunk(0);
  Field2D<double> rhs(40, 40, 0, 0.0);
  for (int k = 0; k < 40; ++k)
    for (int j = 0; j < 40; ++j) rhs(j, k) = c.u0()(j, k);

  auto mg_solver = MGPreconditionedCG::from_chunk(c);
  Field2D<double> u_mg(40, 40, 1, 0.0);
  ASSERT_TRUE(mg_solver.solve(rhs, u_mg).converged);

  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  cfg.eps = 1e-12;
  ASSERT_TRUE(CGSolver::solve(*cl, cfg).converged);
  for (int k = 0; k < 40; ++k)
    for (int j = 0; j < 40; ++j)
      EXPECT_NEAR(u_mg(j, k), c.u()(j, k), 1e-6) << j << "," << k;
}

TEST(MGPCG, NearMeshIndependentIterations) {
  // The property that makes AMG the low-node-count winner (paper §VIII):
  // iteration counts barely grow with resolution, unlike plain CG.
  int iters32 = 0, iters64 = 0, cg32 = 0, cg64 = 0;
  for (const int n : {32, 64}) {
    auto cl = mg_problem(n, 16.0);
    Chunk2D& c = cl->chunk(0);
    Field2D<double> rhs(n, n, 0, 0.0);
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j) rhs(j, k) = c.u0()(j, k);
    auto solver = MGPreconditionedCG::from_chunk(c);
    Field2D<double> u(n, n, 1, 0.0);
    const MGPCGResult res = solver.solve(rhs, u);
    ASSERT_TRUE(res.converged);
    SolverConfig cfg;
    cfg.type = SolverType::kCG;
    cfg.eps = 1e-10;
    const SolveStats st = CGSolver::solve(*cl, cfg);
    ASSERT_TRUE(st.converged);
    (n == 32 ? iters32 : iters64) = res.iterations;
    (n == 32 ? cg32 : cg64) = st.outer_iters;
  }
  EXPECT_LE(iters64, iters32 + 6) << "MG-PCG should be ~mesh independent";
  EXPECT_GT(cg64, cg32) << "plain CG iterations must grow with n";
  EXPECT_LT(iters64, cg64 / 2) << "MG-PCG should need far fewer iterations";
}

TEST(MGPCG, OddSizedGridsWork) {
  auto cl = mg_problem(37, 4.0);
  Chunk2D& c = cl->chunk(0);
  Field2D<double> rhs(37, 37, 0, 0.0);
  for (int k = 0; k < 37; ++k)
    for (int j = 0; j < 37; ++j) rhs(j, k) = c.u0()(j, k);
  auto solver = MGPreconditionedCG::from_chunk(c);
  Field2D<double> u(37, 37, 1, 0.0);
  EXPECT_TRUE(solver.solve(rhs, u).converged);
}

TEST(MGPCG, SetupCostIsRecorded) {
  auto cl = mg_problem(32);
  auto solver = MGPreconditionedCG::from_chunk(cl->chunk(0));
  EXPECT_GE(solver.setup_seconds(), 0.0);
  EXPECT_GE(solver.hierarchy().num_levels(), 3);
}

}  // namespace
}  // namespace tealeaf
