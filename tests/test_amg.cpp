#include <gtest/gtest.h>

#include <cmath>

#include "amg/mg_pcg.hpp"
#include "amg/multigrid.hpp"
#include "comm/sim_comm.hpp"
#include "ops/kernels.hpp"
#include "solvers/cg.hpp"
#include "test_helpers.hpp"

namespace tealeaf {
namespace {

using testing::make_test_problem;

/// Build a single-chunk problem and return (cluster, chunk&) with kx/ky
/// initialised — the MG solvers take their coefficients from the chunk.
std::unique_ptr<SimCluster2D> mg_problem(int n, double rx_ry = 8.0) {
  return make_test_problem(n, 1, 2, rx_ry);
}

TEST(Multigrid, HierarchyShrinksToCoarseFloor) {
  auto cl = mg_problem(64);
  const Chunk2D& c = cl->chunk(0);
  Multigrid2D mg(c.kx(), c.ky(), c.nx(), c.ny());
  ASSERT_GE(mg.num_levels(), 4);
  EXPECT_EQ(mg.level(0).nx, 64);
  EXPECT_EQ(mg.level(1).nx, 32);
  EXPECT_LE(mg.level(mg.num_levels() - 1).nx, 4);
  // Coefficients restrict positively and shrink by the 1/4 rescale.
  EXPECT_GT(mg.level(1).kx(1, 1), 0.0);
  EXPECT_LT(mg.level(1).kx(1, 1), mg.level(0).kx(2, 2) * 2.0);
}

TEST(Multigrid, VCycleContractsResidual) {
  auto cl = mg_problem(64);
  const Chunk2D& c = cl->chunk(0);
  Multigrid2D mg(c.kx(), c.ky(), c.nx(), c.ny());
  const MGLevel& lv = mg.level(0);

  Field2D<double> rhs(64, 64, 1, 0.0);
  for (int k = 0; k < 64; ++k)
    for (int j = 0; j < 64; ++j)
      rhs(j, k) = std::sin(0.2 * j) * std::cos(0.15 * k);
  Field2D<double> u(64, 64, 1, 0.0);

  const auto resnorm = [&] {
    double rr = 0.0;
    for (int k = 0; k < 64; ++k) {
      for (int j = 0; j < 64; ++j) {
        const double r = rhs(j, k) - Multigrid2D::apply_stencil(lv, u, j, k);
        rr += r * r;
      }
    }
    return std::sqrt(rr);
  };

  const double r0 = resnorm();
  Field2D<double> z(64, 64, 1, 0.0);
  mg.v_cycle(rhs, z);
  for (int k = 0; k < 64; ++k)
    for (int j = 0; j < 64; ++j) u(j, k) += z(j, k);
  const double r1 = resnorm();
  EXPECT_LT(r1, 0.5 * r0) << "one V-cycle must contract the residual";
}

TEST(MGPCG, SolvesToTolerance) {
  auto cl = mg_problem(48);
  Chunk2D& c = cl->chunk(0);
  auto solver = MGPreconditionedCG::from_chunk(c);
  Field2D<double> u(48, 48, 1, 0.0);
  c.u0().copy_interior_from(c.u());  // u0 = ρe from the fixture
  Field2D<double> rhs(48, 48, 0, 0.0);
  for (int k = 0; k < 48; ++k)
    for (int j = 0; j < 48; ++j) rhs(j, k) = c.u0()(j, k);
  const MGPCGResult res = solver.solve(rhs, u);
  EXPECT_TRUE(res.converged);
  // Independent residual check.
  Multigrid2D mg(c.kx(), c.ky(), 48, 48);
  double rr = 0.0, bb = 0.0;
  for (int k = 0; k < 48; ++k) {
    for (int j = 0; j < 48; ++j) {
      const double r =
          rhs(j, k) - Multigrid2D::apply_stencil(mg.level(0), u, j, k);
      rr += r * r;
      bb += rhs(j, k) * rhs(j, k);
    }
  }
  EXPECT_LT(std::sqrt(rr / bb), 1e-8);
}

TEST(MGPCG, MatchesTeaLeafCGSolution) {
  auto cl = mg_problem(40, 16.0);
  Chunk2D& c = cl->chunk(0);
  Field2D<double> rhs(40, 40, 0, 0.0);
  for (int k = 0; k < 40; ++k)
    for (int j = 0; j < 40; ++j) rhs(j, k) = c.u0()(j, k);

  auto mg_solver = MGPreconditionedCG::from_chunk(c);
  Field2D<double> u_mg(40, 40, 1, 0.0);
  ASSERT_TRUE(mg_solver.solve(rhs, u_mg).converged);

  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  cfg.eps = 1e-12;
  ASSERT_TRUE(CGSolver::solve(*cl, cfg).converged);
  for (int k = 0; k < 40; ++k)
    for (int j = 0; j < 40; ++j)
      EXPECT_NEAR(u_mg(j, k), c.u()(j, k), 1e-6) << j << "," << k;
}

TEST(MGPCG, NearMeshIndependentIterations) {
  // The property that makes AMG the low-node-count winner (paper §VIII):
  // iteration counts barely grow with resolution, unlike plain CG.
  int iters32 = 0, iters64 = 0, cg32 = 0, cg64 = 0;
  for (const int n : {32, 64}) {
    auto cl = mg_problem(n, 16.0);
    Chunk2D& c = cl->chunk(0);
    Field2D<double> rhs(n, n, 0, 0.0);
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j) rhs(j, k) = c.u0()(j, k);
    auto solver = MGPreconditionedCG::from_chunk(c);
    Field2D<double> u(n, n, 1, 0.0);
    const MGPCGResult res = solver.solve(rhs, u);
    ASSERT_TRUE(res.converged);
    SolverConfig cfg;
    cfg.type = SolverType::kCG;
    cfg.eps = 1e-10;
    const SolveStats st = CGSolver::solve(*cl, cfg);
    ASSERT_TRUE(st.converged);
    (n == 32 ? iters32 : iters64) = res.iterations;
    (n == 32 ? cg32 : cg64) = st.outer_iters;
  }
  EXPECT_LE(iters64, iters32 + 6) << "MG-PCG should be ~mesh independent";
  EXPECT_GT(cg64, cg32) << "plain CG iterations must grow with n";
  EXPECT_LT(iters64, cg64 / 2) << "MG-PCG should need far fewer iterations";
}

TEST(MGPCG, OddSizedGridsWork) {
  auto cl = mg_problem(37, 4.0);
  Chunk2D& c = cl->chunk(0);
  Field2D<double> rhs(37, 37, 0, 0.0);
  for (int k = 0; k < 37; ++k)
    for (int j = 0; j < 37; ++j) rhs(j, k) = c.u0()(j, k);
  auto solver = MGPreconditionedCG::from_chunk(c);
  Field2D<double> u(37, 37, 1, 0.0);
  EXPECT_TRUE(solver.solve(rhs, u).converged);
}

TEST(MGPCG, SetupCostIsRecorded) {
  auto cl = mg_problem(32);
  auto solver = MGPreconditionedCG::from_chunk(cl->chunk(0));
  EXPECT_GE(solver.setup_seconds(), 0.0);
  EXPECT_GE(solver.hierarchy().num_levels(), 3);
}

// ---- dimension-generic hierarchy (3-D, mirroring test_geometry3d) -------

using testing::make_test_problem;
using testing::make_test_problem_3d;
using testing::make_test_problem_slab3d;

TEST(Multigrid3D, HierarchyCoarsensPerAxis) {
  auto cl = make_test_problem_3d(32, 1, 2, 8.0);
  const Chunk& c = cl->chunk(0);
  Multigrid mg(c.kx(), c.ky(), c.kz(), 32, 32, 32);
  ASSERT_EQ(mg.num_levels(), 4);  // 32³ → 16³ → 8³ → 4³
  EXPECT_EQ(mg.level(1).nx, 16);
  EXPECT_EQ(mg.level(1).nz, 16);
  EXPECT_EQ(mg.level(3).nz, 4);
  // Coefficients restrict positively on every axis.
  EXPECT_GT(mg.level(1).kx(1, 1, 1), 0.0);
  EXPECT_GT(mg.level(1).kz(1, 1, 1), 0.0);

  // Anisotropic brick: short axes hold at the floor while long axes keep
  // coarsening (per-axis factors from the extents).
  Field<double> kx = Field<double>::make3d(16, 16, 4, 1, 0.1);
  Field<double> ky = Field<double>::make3d(16, 16, 4, 1, 0.1);
  Field<double> kz = Field<double>::make3d(16, 16, 4, 1, 0.1);
  Multigrid aniso(kx, ky, kz, 16, 16, 4);
  ASSERT_EQ(aniso.num_levels(), 3);  // (16,16,4) → (8,8,4) → (4,4,4)
  EXPECT_EQ(aniso.level(1).nx, 8);
  EXPECT_EQ(aniso.level(1).nz, 4);
  EXPECT_EQ(aniso.level(2).nx, 4);
  EXPECT_EQ(aniso.level(2).nz, 4);
}

TEST(Multigrid3D, TransferOperatorsPreserveConstantsOnHeldAxes) {
  // Full weighting must average, never sum: restricting a constant-1
  // residual yields exactly 1 for EVERY combination of coarsened and
  // held axes (a held axis has a single child; double-counting its
  // duplicate index would restrict constants to 2).
  struct Extents {
    int fnx, fny, fnz, cnx, cny, cnz;
  };
  for (const Extents& e : {Extents{4, 4, 1, 2, 2, 1},    // classic 2-D
                           Extents{4, 2, 2, 2, 2, 1},    // y held
                           Extents{2, 4, 4, 2, 2, 2},    // x held
                           Extents{4, 4, 2, 2, 2, 2},    // z held
                           Extents{4, 4, 4, 2, 2, 2}}) { // full 3-D
    Field<double> fine =
        Field<double>::make3d(e.fnx, e.fny, e.fnz, 1, 0.0);
    fine.fill_interior(1.0);
    Field<double> coarse_rhs =
        Field<double>::make3d(e.cnx, e.cny, e.cnz, 1, 0.0);
    Field<double> coarse_u =
        Field<double>::make3d(e.cnx, e.cny, e.cnz, 1, 0.0);
    for (int lc = 0; lc < e.cnz; ++lc)
      for (int kc = 0; kc < e.cny; ++kc)
        kernels::mg_restrict_row(fine, e.fnx, e.fny, e.fnz, coarse_rhs,
                                 coarse_u, e.cnx, e.cny, e.cnz, kc, lc);
    for (int lc = 0; lc < e.cnz; ++lc)
      for (int kc = 0; kc < e.cny; ++kc)
        for (int jc = 0; jc < e.cnx; ++jc)
          ASSERT_EQ(coarse_rhs(jc, kc, lc), 1.0)
              << e.fnx << "x" << e.fny << "x" << e.fnz << " -> " << e.cnx
              << "x" << e.cny << "x" << e.cnz << " at (" << jc << ","
              << kc << "," << lc << ")";

    // The transpose: prolonging a constant coarse correction adds
    // exactly that constant to every fine cell.
    coarse_u.fill_interior(1.0);
    Field<double> fine_u =
        Field<double>::make3d(e.fnx, e.fny, e.fnz, 1, 0.0);
    for (int lf = 0; lf < e.fnz; ++lf)
      for (int kf = 0; kf < e.fny; ++kf)
        kernels::mg_prolong_row(coarse_u, e.cnx, e.cny, e.cnz, fine_u,
                                e.fnx, e.fny, e.fnz, kf, lf);
    for (int lf = 0; lf < e.fnz; ++lf)
      for (int kf = 0; kf < e.fny; ++kf)
        for (int jf = 0; jf < e.fnx; ++jf)
          ASSERT_EQ(fine_u(jf, kf, lf), 1.0);
  }
}

TEST(Multigrid3D, VCycleContractsOnAnisotropic2DGrid) {
  // Per-axis coarsening makes held-axis levels reachable in 2-D too
  // (e.g. 32x4: y holds at the floor while x keeps halving); the
  // restriction must keep averaging there for the V-cycle to contract.
  const int nx = 32, ny = 4;
  Field<double> kx(nx, ny, 1, 0.0);
  Field<double> ky(nx, ny, 1, 0.0);
  for (int k = 0; k < ny; ++k)
    for (int j = 1; j < nx; ++j) kx(j, k) = 2.0;  // boundary faces zero
  for (int k = 1; k < ny; ++k)
    for (int j = 0; j < nx; ++j) ky(j, k) = 2.0;
  Multigrid mg(kx, ky, nx, ny);
  ASSERT_GE(mg.num_levels(), 3);
  EXPECT_EQ(mg.level(1).nx, 16);
  EXPECT_EQ(mg.level(1).ny, 4);  // y held at the floor

  Field<double> rhs(nx, ny, 1, 0.0);
  for (int k = 0; k < ny; ++k)
    for (int j = 0; j < nx; ++j)
      rhs(j, k) = std::sin(0.2 * j) * std::cos(0.5 * k);
  Field<double> z(nx, ny, 1, 0.0);
  mg.v_cycle(rhs, z);
  double rr = 0.0, r0 = 0.0;
  for (int k = 0; k < ny; ++k) {
    for (int j = 0; j < nx; ++j) {
      const double r =
          rhs(j, k) - Multigrid::apply_stencil(mg.level(0), z, j, k);
      rr += r * r;
      r0 += rhs(j, k) * rhs(j, k);
    }
  }
  EXPECT_LT(std::sqrt(rr), 0.5 * std::sqrt(r0))
      << "V-cycle must contract on held-axis hierarchies";
}

TEST(Multigrid3D, VCycleContractsResidual3D) {
  const int n = 20;
  auto cl = make_test_problem_3d(n, 1, 2, 8.0);
  const Chunk& c = cl->chunk(0);
  Multigrid mg(c.kx(), c.ky(), c.kz(), n, n, n);
  const MGLevel& lv = mg.level(0);

  Field<double> rhs = Field<double>::make3d(n, n, n, 1, 0.0);
  for (int l = 0; l < n; ++l)
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j)
        rhs(j, k, l) =
            std::sin(0.2 * j) * std::cos(0.15 * k) * std::cos(0.1 * l);
  Field<double> u = Field<double>::make3d(n, n, n, 1, 0.0);

  const auto resnorm = [&] {
    double rr = 0.0;
    for (int l = 0; l < n; ++l) {
      for (int k = 0; k < n; ++k) {
        for (int j = 0; j < n; ++j) {
          const double r =
              rhs(j, k, l) - Multigrid::apply_stencil(lv, u, j, k, l);
          rr += r * r;
        }
      }
    }
    return std::sqrt(rr);
  };

  const double r0 = resnorm();
  Field<double> z = Field<double>::make3d(n, n, n, 1, 0.0);
  mg.v_cycle(rhs, z);
  for (int l = 0; l < n; ++l)
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j) u(j, k, l) += z(j, k, l);
  const double r1 = resnorm();
  EXPECT_LT(r1, 0.5 * r0) << "one V-cycle must contract the residual";
}

TEST(Multigrid3D, SinglePlaneVCycleMatches2DExactly) {
  // The tentpole contract at the hierarchy level: a 3-D hierarchy built
  // over a single cell-plane (Kz ≡ 0) has the same level ladder as the
  // 2-D hierarchy and its V-cycle output equals the 2-D V-cycle's
  // bitwise, row for row.
  const int n = 24;
  auto d2 = make_test_problem(n, 1, 2, 6.0);
  auto d3 = make_test_problem_slab3d(n, 1, 2, 6.0);
  const Chunk& c2 = d2->chunk(0);
  const Chunk& c3 = d3->chunk(0);
  Multigrid mg2(c2.kx(), c2.ky(), n, n);
  Multigrid mg3(c3.kx(), c3.ky(), c3.kz(), n, n, 1);
  ASSERT_EQ(mg3.num_levels(), mg2.num_levels());
  for (int lev = 0; lev < mg2.num_levels(); ++lev) {
    EXPECT_EQ(mg3.level(lev).nx, mg2.level(lev).nx);
    EXPECT_EQ(mg3.level(lev).ny, mg2.level(lev).ny);
    EXPECT_EQ(mg3.level(lev).nz, 1);
  }

  Field<double> rhs2(n, n, 1, 0.0);
  Field<double> rhs3 = Field<double>::make3d(n, n, 1, 1, 0.0);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const double v = std::sin(0.2 * j) * std::cos(0.15 * k);
      rhs2(j, k) = v;
      rhs3(j, k, 0) = v;
    }
  }
  Field<double> z2(n, n, 1, 0.0);
  Field<double> z3 = Field<double>::make3d(n, n, 1, 1, 0.0);
  mg2.v_cycle(rhs2, z2);
  mg3.v_cycle(rhs3, z3);
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      ASSERT_EQ(z2(j, k), z3(j, k, 0)) << "(" << j << "," << k << ")";

  // Residual norms of the corrected iterate agree exactly too.
  double rr2 = 0.0, rr3 = 0.0;
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const double r2 =
          rhs2(j, k) - Multigrid::apply_stencil(mg2.level(0), z2, j, k);
      const double r3 = rhs3(j, k, 0) - Multigrid::apply_stencil(
                                            mg3.level(0), z3, j, k, 0);
      rr2 += r2 * r2;
      rr3 += r3 * r3;
    }
  }
  EXPECT_EQ(rr2, rr3);
}

TEST(MGPCG3D, SolvesToTolerance3D) {
  const int n = 20;
  auto cl = make_test_problem_3d(n, 1, 2, 8.0);
  Chunk& c = cl->chunk(0);
  auto solver = MGPreconditionedCG::from_chunk(c);
  c.u0().copy_interior_from(c.u());  // u0 = ρe from the fixture
  Field<double> rhs = Field<double>::make3d(n, n, n, 0, 0.0);
  for (int l = 0; l < n; ++l)
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j) rhs(j, k, l) = c.u0()(j, k, l);
  Field<double> u = Field<double>::make3d(n, n, n, 1, 0.0);
  const MGPCGResult res = solver.solve(rhs, u);
  EXPECT_TRUE(res.converged);
  // Independent residual check against the 7-point operator.
  Multigrid mg(c.kx(), c.ky(), c.kz(), n, n, n);
  double rr = 0.0, bb = 0.0;
  for (int l = 0; l < n; ++l) {
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        const double r = rhs(j, k, l) -
                         Multigrid::apply_stencil(mg.level(0), u, j, k, l);
        rr += r * r;
        bb += rhs(j, k, l) * rhs(j, k, l);
      }
    }
  }
  EXPECT_LT(std::sqrt(rr / bb), 1e-8);
}

TEST(MGPCG3D, NearMeshIndependentIterations3D) {
  int iters16 = 0, iters32 = 0;
  for (const int n : {16, 32}) {
    auto cl = make_test_problem_3d(n, 1, 2, 16.0);
    Chunk& c = cl->chunk(0);
    c.u0().copy_interior_from(c.u());
    Field<double> rhs = Field<double>::make3d(n, n, n, 0, 0.0);
    for (int l = 0; l < n; ++l)
      for (int k = 0; k < n; ++k)
        for (int j = 0; j < n; ++j) rhs(j, k, l) = c.u0()(j, k, l);
    auto solver = MGPreconditionedCG::from_chunk(c);
    Field<double> u = Field<double>::make3d(n, n, n, 1, 0.0);
    const MGPCGResult res = solver.solve(rhs, u);
    ASSERT_TRUE(res.converged);
    (n == 16 ? iters16 : iters32) = res.iterations;
  }
  EXPECT_LE(iters32, iters16 + 6) << "MG-PCG should be ~mesh independent";
}

TEST(MGPCG3D, MatchesTeaLeafCGSolution3D) {
  const int n = 14;
  auto cl = make_test_problem_3d(n, 1, 2, 8.0);
  Chunk& c = cl->chunk(0);
  Field<double> rhs = Field<double>::make3d(n, n, n, 0, 0.0);
  for (int l = 0; l < n; ++l)
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j) rhs(j, k, l) = c.u0()(j, k, l);

  auto mg_solver = MGPreconditionedCG::from_chunk(c);
  Field<double> u_mg = Field<double>::make3d(n, n, n, 1, 0.0);
  ASSERT_TRUE(mg_solver.solve(rhs, u_mg).converged);

  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  cfg.eps = 1e-12;
  ASSERT_TRUE(CGSolver::solve(*cl, cfg).converged);
  for (int l = 0; l < n; ++l)
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j)
        EXPECT_NEAR(u_mg(j, k, l), c.u()(j, k, l), 1e-6)
            << j << "," << k << "," << l;
}

TEST(MGPCG3D, SinglePlaneSolveMatches2DExactly) {
  // The satellite contract: the slab solve reproduces the 2-D iteration
  // count, both residual norms and the iterate itself exactly — in both
  // execution engines.
  for (const bool fused : {false, true}) {
    const int n = 24;
    auto d2 = make_test_problem(n, 1, 2, 6.0);
    auto d3 = make_test_problem_slab3d(n, 1, 2, 6.0);
    Chunk& c2 = d2->chunk(0);
    Chunk& c3 = d3->chunk(0);
    MGPreconditionedCG::Options opt;
    opt.fused = fused;
    auto s2 = MGPreconditionedCG::from_chunk(c2, opt);
    auto s3 = MGPreconditionedCG::from_chunk(c3, opt);

    Field<double> rhs2(n, n, 0, 0.0);
    Field<double> rhs3 = Field<double>::make3d(n, n, 1, 0, 0.0);
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j) {
        rhs2(j, k) = c2.u0()(j, k);
        rhs3(j, k, 0) = c3.u0()(j, k, 0);
        ASSERT_EQ(rhs2(j, k), rhs3(j, k, 0));
      }
    Field<double> u2(n, n, 1, 0.0);
    Field<double> u3 = Field<double>::make3d(n, n, 1, 1, 0.0);
    const MGPCGResult r2 = s2.solve(rhs2, u2);
    const MGPCGResult r3 = s3.solve(rhs3, u3);
    ASSERT_TRUE(r2.converged);
    ASSERT_TRUE(r3.converged);
    EXPECT_EQ(r3.iterations, r2.iterations) << "fused=" << fused;
    EXPECT_EQ(r3.initial_norm, r2.initial_norm) << "fused=" << fused;
    EXPECT_EQ(r3.final_norm, r2.final_norm) << "fused=" << fused;
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j)
        ASSERT_EQ(u2(j, k), u3(j, k, 0))
            << "fused=" << fused << " (" << j << "," << k << ")";
  }
}

TEST(MGPCG3D, FusedBitwiseIdenticalToUnfused) {
  // Engine equivalence in BOTH dimensions, the way test_geometry3d
  // enforces it for the native solvers.
  for (const int dims : {2, 3}) {
    const int n = dims == 3 ? 12 : 24;
    auto cl = dims == 3 ? make_test_problem_3d(n, 1, 2, 6.0)
                        : make_test_problem(n, 1, 2, 6.0);
    Chunk& c = cl->chunk(0);
    const auto rhs_field = [&] {
      Field<double> rhs =
          dims == 3 ? Field<double>::make3d(n, n, n, 0, 0.0)
                    : Field<double>(n, n, 0, 0.0);
      for (int l = 0; l < c.nz(); ++l)
        for (int k = 0; k < n; ++k)
          for (int j = 0; j < n; ++j) rhs(j, k, l) = c.u0()(j, k, l);
      return rhs;
    };
    const Field<double> rhs = rhs_field();
    const auto solve_with = [&](bool fused, Field<double>& u) {
      MGPreconditionedCG::Options opt;
      opt.fused = fused;
      auto solver = MGPreconditionedCG::from_chunk(c, opt);
      return solver.solve(rhs, u);
    };
    Field<double> uu = dims == 3 ? Field<double>::make3d(n, n, n, 1, 0.0)
                                 : Field<double>(n, n, 1, 0.0);
    Field<double> uf = dims == 3 ? Field<double>::make3d(n, n, n, 1, 0.0)
                                 : Field<double>(n, n, 1, 0.0);
    const MGPCGResult ru = solve_with(false, uu);
    const MGPCGResult rf = solve_with(true, uf);
    ASSERT_TRUE(ru.converged) << dims << "D";
    ASSERT_TRUE(rf.converged) << dims << "D";
    EXPECT_EQ(rf.iterations, ru.iterations) << dims << "D";
    EXPECT_EQ(rf.initial_norm, ru.initial_norm) << dims << "D";
    EXPECT_EQ(rf.final_norm, ru.final_norm) << dims << "D";
    for (int l = 0; l < c.nz(); ++l)
      for (int k = 0; k < n; ++k)
        for (int j = 0; j < n; ++j)
          ASSERT_EQ(uu(j, k, l), uf(j, k, l))
              << dims << "D (" << j << "," << k << "," << l << ")";
  }
}

}  // namespace
}  // namespace tealeaf
