#include <gtest/gtest.h>

#include "driver/deck.hpp"
#include "driver/decks.hpp"

namespace tealeaf {
namespace {

constexpr const char* kSampleDeck = R"(
! A tea.in-style deck
*tea
x_cells=64
y_cells=48
xmin=0.0
xmax=8.0
ymin=0.0
ymax=6.0
initial_timestep=0.02
end_step=5
tl_use_ppcg
tl_max_iters=1234
tl_eps=1e-9
tl_ppcg_inner_steps=12
tl_eigen_cg_iters=25
tl_halo_depth=4
tl_preconditioner_type=jac_diag
tl_coefficient=recip_conductivity
state 1 density=100.0 energy=0.0001
state 2 density=0.1 energy=25.0 geometry=rectangle xmin=1.0 xmax=2.0 ymin=1.0 ymax=2.0
state 3 density=2.0 energy=0.5 geometry=circle xcentre=4.0 ycentre=3.0 radius=1.5
state 4 density=3.0 energy=0.7 geometry=point x=7.0 y=5.0
*endtea
)";

TEST(Deck, ParsesEveryRecognisedKey) {
  const InputDeck deck = InputDeck::parse_string(kSampleDeck);
  EXPECT_EQ(deck.x_cells, 64);
  EXPECT_EQ(deck.y_cells, 48);
  EXPECT_DOUBLE_EQ(deck.xmax, 8.0);
  EXPECT_DOUBLE_EQ(deck.initial_timestep, 0.02);
  EXPECT_EQ(deck.end_step, 5);
  EXPECT_EQ(deck.solver.type, SolverType::kPPCG);
  EXPECT_EQ(deck.solver.max_iters, 1234);
  EXPECT_DOUBLE_EQ(deck.solver.eps, 1e-9);
  EXPECT_EQ(deck.solver.inner_steps, 12);
  EXPECT_EQ(deck.solver.eigen_cg_iters, 25);
  EXPECT_EQ(deck.solver.halo_depth, 4);
  EXPECT_EQ(deck.solver.precon, PreconType::kJacobiDiag);
  EXPECT_EQ(deck.coefficient, kernels::Coefficient::kRecipConductivity);
  ASSERT_EQ(deck.states.size(), 4u);
  EXPECT_EQ(deck.states[0].geometry, StateDef::Geometry::kBackground);
  EXPECT_EQ(deck.states[1].geometry, StateDef::Geometry::kRectangle);
  EXPECT_EQ(deck.states[2].geometry, StateDef::Geometry::kCircle);
  EXPECT_EQ(deck.states[3].geometry, StateDef::Geometry::kPoint);
  EXPECT_DOUBLE_EQ(deck.states[2].radius, 1.5);
}

TEST(Deck, RoundTripsThroughToString) {
  const InputDeck a = InputDeck::parse_string(kSampleDeck);
  const InputDeck b = InputDeck::parse_string(a.to_string());
  EXPECT_EQ(b.x_cells, a.x_cells);
  EXPECT_EQ(b.solver.type, a.solver.type);
  EXPECT_EQ(b.solver.halo_depth, a.solver.halo_depth);
  EXPECT_EQ(b.states.size(), a.states.size());
  EXPECT_DOUBLE_EQ(b.states[2].cx, a.states[2].cx);
  EXPECT_EQ(b.coefficient, a.coefficient);
}

TEST(Deck, NumStepsFromTimeOrStep) {
  InputDeck d = decks::hot_block(16, 7);
  EXPECT_EQ(d.num_steps(), 7);
  d.end_step = 0;
  d.end_time = 1.0;
  d.initial_timestep = 0.04;
  EXPECT_EQ(d.num_steps(), 25);
  d.end_step = 10;  // both set: the earlier one wins
  EXPECT_EQ(d.num_steps(), 10);
}

TEST(Deck, RejectsMalformedInput) {
  EXPECT_THROW(InputDeck::parse_string("*tea\nbogus_key=1\n*endtea\n"),
               TeaError);
  EXPECT_THROW(
      InputDeck::parse_string("*tea\nx_cells=4\ny_cells=4\nend_step=1\n"
                              "state 1 density=nope energy=1\n*endtea\n"),
      TeaError);
  // No states at all.
  EXPECT_THROW(
      InputDeck::parse_string("*tea\nx_cells=4\ny_cells=4\nend_step=1\n"
                              "*endtea\n"),
      TeaError);
}

TEST(Deck, CommentsAndBlankLinesIgnored) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\n"
      "# full-line comment\n"
      "x_cells=8   ! trailing comment\n"
      "y_cells=8\n\n"
      "end_step=1\n"
      "state 1 density=1.0 energy=1.0\n"
      "*endtea\n");
  EXPECT_EQ(deck.x_cells, 8);
}

TEST(StateGeometry, ContainsSemantics) {
  StateDef rect;
  rect.geometry = StateDef::Geometry::kRectangle;
  rect.xmin = 1.0;
  rect.xmax = 2.0;
  rect.ymin = 1.0;
  rect.ymax = 2.0;
  EXPECT_TRUE(rect.contains(1.5, 1.5, 0.1, 0.1));
  EXPECT_FALSE(rect.contains(2.5, 1.5, 0.1, 0.1));
  EXPECT_TRUE(rect.contains(1.0, 1.0, 0.1, 0.1));   // inclusive low edge
  EXPECT_FALSE(rect.contains(2.0, 1.5, 0.1, 0.1));  // exclusive high edge

  StateDef circ;
  circ.geometry = StateDef::Geometry::kCircle;
  circ.cx = 0.0;
  circ.cy = 0.0;
  circ.radius = 1.0;
  EXPECT_TRUE(circ.contains(0.5, 0.5, 0.1, 0.1));
  EXPECT_FALSE(circ.contains(0.9, 0.9, 0.1, 0.1));

  StateDef pt;
  pt.geometry = StateDef::Geometry::kPoint;
  pt.px = 3.0;
  pt.py = 3.0;
  EXPECT_TRUE(pt.contains(3.04, 2.96, 0.1, 0.1));
  EXPECT_FALSE(pt.contains(3.2, 3.0, 0.1, 0.1));
}

TEST(BuiltinDecks, CrookedPipeShapeIsSane) {
  const InputDeck deck = decks::crooked_pipe(400);
  deck.validate();
  EXPECT_EQ(deck.x_cells, 400);
  EXPECT_DOUBLE_EQ(deck.initial_timestep, 0.04);
  EXPECT_DOUBLE_EQ(deck.end_time, 15.0);
  EXPECT_EQ(deck.num_steps(), 375);  // the paper's configuration
  ASSERT_GE(deck.states.size(), 6u);
  // Background is dense; pipe states are light.
  EXPECT_DOUBLE_EQ(deck.states[0].density, 100.0);
  for (std::size_t i = 1; i < deck.states.size(); ++i) {
    EXPECT_DOUBLE_EQ(deck.states[i].density, 0.1);
  }
  // The hot inlet is the last state so it overrides the pipe energy.
  EXPECT_DOUBLE_EQ(deck.states.back().energy, 25.0);

  // The pipe must be a connected path from x=0 to x=10: spot-check a
  // cell from every segment.
  const auto in_pipe = [&](double x, double y) {
    for (std::size_t i = 1; i < deck.states.size(); ++i) {
      if (deck.states[i].contains(x, y, 0.025, 0.025)) return true;
    }
    return false;
  };
  EXPECT_TRUE(in_pipe(0.5, 7.5));   // inlet segment
  EXPECT_TRUE(in_pipe(2.5, 5.0));   // first descender
  EXPECT_TRUE(in_pipe(5.0, 2.5));   // bottom run
  EXPECT_TRUE(in_pipe(7.5, 4.5));   // riser
  EXPECT_TRUE(in_pipe(9.5, 5.5));   // outlet
  EXPECT_FALSE(in_pipe(5.0, 8.5));  // dense background
}

TEST(BuiltinDecks, StepOverrideSkipsEndTime) {
  const InputDeck deck = decks::crooked_pipe(100, 3);
  EXPECT_EQ(deck.num_steps(), 3);
}

TEST(BuiltinDecks, OthersValidate) {
  decks::hot_block(32, 2).validate();
  decks::layered_material(32, 2).validate();
}

// ---- dimension-generic deck keys (tl_geometry / z_cells / zmin / zmax) ---

TEST(GeometryDeck, Parses3DKeysAndRoundTrips) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\ntl_geometry=3d\nx_cells=12\ny_cells=10\nz_cells=8\n"
      "xmin=0\nxmax=6\nymin=0\nymax=5\nzmin=-1\nzmax=3\nend_step=1\n"
      "state 1 density=1.0 energy=1.0\n"
      "state 2 density=0.5 energy=5.0 geometry=rectangle xmin=1 xmax=2 "
      "ymin=1 ymax=2 zmin=0 zmax=1\n"
      "state 3 density=0.2 energy=2.0 geometry=circle xcentre=3 ycentre=3 "
      "zcentre=1 radius=0.5\n*endtea\n");
  EXPECT_EQ(deck.dims, 3);
  EXPECT_EQ(deck.z_cells, 8);
  EXPECT_DOUBLE_EQ(deck.zmin, -1.0);
  EXPECT_DOUBLE_EQ(deck.zmax, 3.0);
  EXPECT_EQ(deck.mesh().dims, 3);
  EXPECT_EQ(deck.mesh().nz, 8);
  EXPECT_TRUE(deck.states[2].has_cz);
  const InputDeck back = InputDeck::parse_string(deck.to_string());
  EXPECT_EQ(back.dims, 3);
  EXPECT_EQ(back.z_cells, 8);
  EXPECT_DOUBLE_EQ(back.zmax, 3.0);
  EXPECT_DOUBLE_EQ(back.states[1].zmax, 1.0);
  EXPECT_TRUE(back.states[2].has_cz);
}

TEST(GeometryDeck, NzIsAnAliasForZCells) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\ntl_geometry=3d\nx_cells=8\ny_cells=8\nnz=4\nend_step=1\n"
      "state 1 density=1 energy=1\n*endtea\n");
  EXPECT_EQ(deck.z_cells, 4);
}

TEST(GeometryDeck, MistypedGeometryKeysSuggestTheRealOnes) {
  const auto expect_suggestion = [](const std::string& body,
                                    const std::string& typo,
                                    const std::string& wanted) {
    try {
      InputDeck::parse_string("*tea\nx_cells=8\ny_cells=8\nend_step=1\n" +
                              body +
                              "\nstate 1 density=1 energy=1\n*endtea\n");
      FAIL() << typo << " must not be silently ignored";
    } catch (const TeaError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("unknown key '" + typo + "'"), std::string::npos)
          << msg;
      EXPECT_NE(msg.find("did you mean '" + wanted + "'?"),
                std::string::npos)
          << msg;
    }
  };
  expect_suggestion("tl_geometri=3d", "tl_geometri", "tl_geometry");
  expect_suggestion("z_cell=4", "z_cell", "z_cells");
  expect_suggestion("zmaxx=2", "zmaxx", "zmax");
  expect_suggestion("sweep_geometrys=2d,3d", "sweep_geometrys",
                    "sweep_geometry");
}

TEST(GeometryDeck, Invalid3DCombinationsAreRejected) {
  // z_cells on a 2-D deck would silently describe a mesh the run ignores.
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nz_cells=4\nend_step=1\n"
                   "state 1 density=1 energy=1\n*endtea\n"),
               TeaError);
  // Unknown geometry values fail loudly.
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\ntl_geometry=4d\nx_cells=8\ny_cells=8\n"
                   "end_step=1\nstate 1 density=1 energy=1\n*endtea\n"),
               TeaError);
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "sweep_solvers=cg\nsweep_geometry=2d,4d\n"
                   "state 1 density=1 energy=1\n*endtea\n"),
               TeaError);
  // Empty z extent on a 3-D deck.
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\ntl_geometry=3d\nx_cells=8\ny_cells=8\nz_cells=4\n"
                   "zmin=2\nzmax=2\nend_step=1\n"
                   "state 1 density=1 energy=1\n*endtea\n"),
               TeaError);
  // A half-specified state z extent would silently extrude; reject it.
  EXPECT_THROW(
      InputDeck::parse_string(
          "*tea\ntl_geometry=3d\nx_cells=8\ny_cells=8\nz_cells=4\n"
          "end_step=1\nstate 1 density=1 energy=1\n"
          "state 2 density=2 energy=1 geometry=rectangle xmin=0 xmax=1 "
          "ymin=0 ymax=1 zmin=2\n*endtea\n"),
      TeaError);
  // As is an explicitly empty one.
  EXPECT_THROW(
      InputDeck::parse_string(
          "*tea\ntl_geometry=3d\nx_cells=8\ny_cells=8\nz_cells=4\n"
          "end_step=1\nstate 1 density=1 energy=1\n"
          "state 2 density=2 energy=1 geometry=rectangle xmin=0 xmax=1 "
          "ymin=0 ymax=1 zmin=3 zmax=3\n*endtea\n"),
      TeaError);
}

TEST(GeometryDeck, SweepGeometryAxisParsesAndRoundTrips) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\nx_cells=16\ny_cells=16\nend_step=1\n"
      "sweep_solvers=cg\nsweep_geometry=2d,3d\n"
      "state 1 density=1 energy=1\n*endtea\n");
  EXPECT_EQ(deck.sweep.geometries, (std::vector<int>{2, 3}));
  const InputDeck back = InputDeck::parse_string(deck.to_string());
  EXPECT_EQ(back.sweep.geometries, (std::vector<int>{2, 3}));
}

TEST(GeometryDeck, StatesExtrudeThroughZWhenNoZInfoGiven) {
  StateDef rect;
  rect.geometry = StateDef::Geometry::kRectangle;
  rect.xmin = 0.0;
  rect.xmax = 1.0;
  rect.ymin = 0.0;
  rect.ymax = 1.0;
  // No z bounds: contained at every z in 3-D (prism).
  EXPECT_TRUE(rect.contains(0.5, 0.5, 99.0, 0.1, 0.1, 0.1, 3));
  rect.zmin = 0.0;
  rect.zmax = 1.0;
  EXPECT_FALSE(rect.contains(0.5, 0.5, 99.0, 0.1, 0.1, 0.1, 3));
  EXPECT_TRUE(rect.contains(0.5, 0.5, 0.5, 0.1, 0.1, 0.1, 3));
  // 2-D reading ignores z entirely.
  EXPECT_TRUE(rect.contains(0.5, 0.5, 0.1, 0.1));
}

TEST(PrecisionDeck, ParsesAndRoundTrips) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\nx_cells=16\ny_cells=16\nend_step=1\n"
      "tl_use_cg\ntl_precision=mixed\n"
      "state 1 density=1 energy=1\n*endtea\n");
  EXPECT_EQ(deck.solver.precision, Precision::kMixed);
  const InputDeck back = InputDeck::parse_string(deck.to_string());
  EXPECT_EQ(back.solver.precision, Precision::kMixed);
  // The default stays double AND stays out of the serialised deck, so
  // pre-precision decks round-trip byte-identically.
  const InputDeck plain = InputDeck::parse_string(
      "*tea\nx_cells=16\ny_cells=16\nend_step=1\n"
      "state 1 density=1 energy=1\n*endtea\n");
  EXPECT_EQ(plain.solver.precision, Precision::kDouble);
  EXPECT_EQ(plain.to_string().find("tl_precision"), std::string::npos);
}

TEST(PrecisionDeck, SweepPrecisionAxisParsesAndRoundTrips) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\nx_cells=16\ny_cells=16\nend_step=1\n"
      "sweep_solvers=cg\nsweep_precision=double,single,mixed\n"
      "state 1 density=1 energy=1\n*endtea\n");
  EXPECT_EQ(deck.sweep.precisions,
            (std::vector<std::string>{"double", "single", "mixed"}));
  const InputDeck back = InputDeck::parse_string(deck.to_string());
  EXPECT_EQ(back.sweep.precisions,
            (std::vector<std::string>{"double", "single", "mixed"}));
}

TEST(PrecisionDeck, MistypedPrecisionKeysSuggestTheRealOnes) {
  const auto expect_suggestion = [](const std::string& body,
                                    const std::string& typo,
                                    const std::string& wanted) {
    try {
      InputDeck::parse_string("*tea\nx_cells=8\ny_cells=8\nend_step=1\n" +
                              body +
                              "\nstate 1 density=1 energy=1\n*endtea\n");
      FAIL() << typo << " must not be silently ignored";
    } catch (const TeaError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("unknown key '" + typo + "'"), std::string::npos)
          << msg;
      EXPECT_NE(msg.find("did you mean '" + wanted + "'?"),
                std::string::npos)
          << msg;
    }
  };
  expect_suggestion("tl_precison=mixed", "tl_precison", "tl_precision");
  expect_suggestion("tl_precisions=single", "tl_precisions", "tl_precision");
  expect_suggestion("sweep_precisions=double,mixed", "sweep_precisions",
                    "sweep_precision");
}

TEST(PrecisionDeck, RejectsBadValuesAndUnsupportedCombos) {
  // A mistyped value must not silently fall back to double.
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "tl_precision=half\n"
                   "state 1 density=1 energy=1\n*endtea\n"),
               TeaError);
  // "fp64"/"fp32"/"float" are accepted aliases, not errors.
  EXPECT_EQ(InputDeck::parse_string(
                "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                "tl_precision=fp32\n"
                "state 1 density=1 energy=1\n*endtea\n")
                .solver.precision,
            Precision::kSingle);
  // A loaded operator has no stencil coefficients to re-assemble in fp32.
  try {
    InputDeck::parse_string(
        "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
        "tl_operator=csr\nmatrix_file=system.mtx\ntl_precision=single\n"
        "state 1 density=1 energy=1\n*endtea\n");
    FAIL() << "tl_precision=single with matrix_file must be rejected";
  } catch (const TeaError& e) {
    EXPECT_NE(std::string(e.what()).find("matrix_file"), std::string::npos)
        << e.what();
  }
  // Precision keys outside the *tea block must fail loudly, not vanish.
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "state 1 density=1 energy=1\n*endtea\n"
                   "tl_precision=mixed\n"),
               TeaError);
  // Unknown sweep-axis entries surface at deck validation.
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "sweep_solvers=cg\nsweep_precision=double,half\n"
                   "state 1 density=1 energy=1\n*endtea\n"),
               TeaError);
}

TEST(RoutingDeck, ParsesAndRoundTrips) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\nx_cells=16\ny_cells=16\nend_step=1\n"
      "tl_route_db=route_db.json\ntl_route_learn\n"
      "tl_route_demote_ratio=2.5\n"
      "state 1 density=1 energy=1\n*endtea\n");
  EXPECT_EQ(deck.route_db, "route_db.json");
  EXPECT_TRUE(deck.route_learn);
  EXPECT_EQ(deck.route_demote_ratio, 2.5);
  const InputDeck back = InputDeck::parse_string(deck.to_string());
  EXPECT_EQ(back.route_db, "route_db.json");
  EXPECT_TRUE(back.route_learn);
  EXPECT_EQ(back.route_demote_ratio, 2.5);
  // The defaults stay out of the serialised deck, so pre-routing decks
  // round-trip byte-identically.
  const InputDeck plain = InputDeck::parse_string(
      "*tea\nx_cells=16\ny_cells=16\nend_step=1\n"
      "state 1 density=1 energy=1\n*endtea\n");
  EXPECT_TRUE(plain.route_db.empty());
  EXPECT_FALSE(plain.route_learn);
  EXPECT_EQ(plain.to_string().find("tl_route"), std::string::npos);
}

TEST(RoutingDeck, RejectsBadValuesAndSuggestsMistypedKeys) {
  // A demotion ratio at or below 1 would demote routes for matching
  // their prediction.
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "tl_route_demote_ratio=1.0\n"
                   "state 1 density=1 energy=1\n*endtea\n"),
               TeaError);
  // A mistyped flag value must not silently enable learning.
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "tl_route_learn=maybe\n"
                   "state 1 density=1 energy=1\n*endtea\n"),
               TeaError);
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "tl_route_db=\n"
                   "state 1 density=1 energy=1\n*endtea\n"),
               TeaError);
  const auto expect_suggestion = [](const std::string& body,
                                    const std::string& typo,
                                    const std::string& wanted) {
    try {
      InputDeck::parse_string("*tea\nx_cells=8\ny_cells=8\nend_step=1\n" +
                              body +
                              "\nstate 1 density=1 energy=1\n*endtea\n");
      FAIL() << typo << " must not be silently ignored";
    } catch (const TeaError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("unknown key '" + typo + "'"), std::string::npos)
          << msg;
      EXPECT_NE(msg.find("did you mean '" + wanted + "'?"),
                std::string::npos)
          << msg;
    }
  };
  expect_suggestion("tl_route_lern", "tl_route_lern", "tl_route_learn");
  expect_suggestion("tl_route_bd=x.json", "tl_route_bd", "tl_route_db");
}

}  // namespace
}  // namespace tealeaf
