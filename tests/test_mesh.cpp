#include <gtest/gtest.h>

#include "mesh/chunk.hpp"
#include "mesh/field.hpp"
#include "mesh/mesh.hpp"

namespace tealeaf {
namespace {

TEST(Field2D, IndexingInteriorAndHalo) {
  Field2D<double> f(4, 3, 2, -1.0);
  EXPECT_EQ(f.nx(), 4);
  EXPECT_EQ(f.ny(), 3);
  EXPECT_EQ(f.halo(), 2);
  EXPECT_EQ(f.size(), static_cast<std::size_t>((4 + 4) * (3 + 4)));
  // Whole allocation initialised.
  EXPECT_DOUBLE_EQ(f(-2, -2), -1.0);
  EXPECT_DOUBLE_EQ(f(5, 4), -1.0);
  f(0, 0) = 3.0;
  f(-2, -2) = 7.0;
  f(5, 4) = 9.0;
  EXPECT_DOUBLE_EQ(f(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(f(-2, -2), 7.0);
  EXPECT_DOUBLE_EQ(f(5, 4), 9.0);
}

TEST(Field2D, RowMajorUnitStrideInJ) {
  Field2D<double> f(5, 4, 1);
  EXPECT_EQ(f.index(1, 0), f.index(0, 0) + 1);
  EXPECT_EQ(f.index(0, 1), f.index(0, 0) + static_cast<std::size_t>(f.stride()));
}

TEST(Field2D, FillInteriorLeavesHalo) {
  Field2D<double> f(3, 3, 1, 5.0);
  f.fill_interior(2.0);
  EXPECT_DOUBLE_EQ(f(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(f(2, 2), 2.0);
  EXPECT_DOUBLE_EQ(f(-1, 0), 5.0);
  EXPECT_DOUBLE_EQ(f(3, 3), 5.0);
}

TEST(Field2D, CopyInteriorAcrossHaloDepths) {
  Field2D<double> a(3, 2, 2, 0.0);
  Field2D<double> b(3, 2, 1, 0.0);
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 3; ++j) a(j, k) = 10.0 * k + j;
  b.copy_interior_from(a);
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(b(j, k), 10.0 * k + j);
}

TEST(Field2D, SumInterior) {
  Field2D<double> f(4, 4, 1, 100.0);  // halo full of junk
  f.fill_interior(1.5);
  EXPECT_DOUBLE_EQ(f.sum_interior(), 1.5 * 16);
}

TEST(Field2D, InvalidConstructionThrows) {
  EXPECT_THROW(Field2D<double>(0, 3, 1), TeaError);
  EXPECT_THROW(Field2D<double>(3, -1, 1), TeaError);
  EXPECT_THROW(Field2D<double>(3, 3, -1), TeaError);
}

TEST(GlobalMesh, GeometryDerivedQuantities) {
  const GlobalMesh2D m(100, 50, 0.0, 10.0, 0.0, 5.0);
  EXPECT_DOUBLE_EQ(m.dx(), 0.1);
  EXPECT_DOUBLE_EQ(m.dy(), 0.1);
  EXPECT_DOUBLE_EQ(m.cell_x(0), 0.05);
  EXPECT_DOUBLE_EQ(m.cell_y(49), 5.0 - 0.05);
  EXPECT_DOUBLE_EQ(m.cell_area(), 0.01);
  EXPECT_EQ(m.cell_count(), 5000);
}

TEST(GlobalMesh, RejectsDegenerateDomains) {
  EXPECT_THROW(GlobalMesh2D(0, 10), TeaError);
  EXPECT_THROW(GlobalMesh2D(10, 10, 1.0, 1.0), TeaError);
}

TEST(ChunkTest, FieldsAllocatedWithHalo) {
  const GlobalMesh2D mesh(8, 8);
  Chunk2D c(ChunkExtent{0, 0, 8, 8}, mesh, 3);
  EXPECT_EQ(c.halo_depth(), 3);
  EXPECT_EQ(c.u().halo(), 3);
  EXPECT_EQ(c.field(FieldId::kKy).nx(), 8);
  c.u()(-3, -3) = 1.0;  // deepest halo corner is addressable
  EXPECT_DOUBLE_EQ(c.u()(-3, -3), 1.0);
}

TEST(ChunkTest, BoundaryDetection) {
  const GlobalMesh2D mesh(10, 10);
  Chunk2D left(ChunkExtent{0, 0, 5, 10}, mesh, 1);
  EXPECT_TRUE(left.at_boundary(Face::kLeft));
  EXPECT_FALSE(left.at_boundary(Face::kRight));
  EXPECT_TRUE(left.at_boundary(Face::kBottom));
  EXPECT_TRUE(left.at_boundary(Face::kTop));
  Chunk2D right(ChunkExtent{5, 0, 5, 10}, mesh, 1);
  EXPECT_FALSE(right.at_boundary(Face::kLeft));
  EXPECT_TRUE(right.at_boundary(Face::kRight));
}

TEST(ChunkTest, GlobalCellCoordinates) {
  const GlobalMesh2D mesh(10, 10, 0.0, 10.0, 0.0, 10.0);
  Chunk2D c(ChunkExtent{5, 2, 5, 8}, mesh, 1);
  EXPECT_DOUBLE_EQ(c.cell_x(0), mesh.cell_x(5));
  EXPECT_DOUBLE_EQ(c.cell_y(0), mesh.cell_y(2));
}

TEST(ChunkTest, RejectsInvalidShapes) {
  const GlobalMesh2D mesh(10, 10);
  EXPECT_THROW(Chunk2D(ChunkExtent{0, 0, 0, 10}, mesh, 1), TeaError);
  EXPECT_THROW(Chunk2D(ChunkExtent{0, 0, 10, 10}, mesh, 0), TeaError);
}

}  // namespace
}  // namespace tealeaf
