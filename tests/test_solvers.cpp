#include <gtest/gtest.h>

#include "solvers/cg.hpp"
#include "solvers/chebyshev.hpp"
#include "solvers/jacobi.hpp"
#include "solvers/ppcg.hpp"
#include "solvers/solver.hpp"
#include "test_helpers.hpp"

namespace tealeaf {
namespace {

using testing::make_test_problem;
using testing::max_field_diff;
using testing::relative_residual;

SolverConfig base_config(SolverType type) {
  SolverConfig cfg;
  cfg.type = type;
  cfg.eps = 1e-12;
  cfg.max_iters = 20000;
  cfg.eigen_cg_iters = 15;
  cfg.inner_steps = 8;
  return cfg;
}

TEST(CG, SolvesToTightResidual) {
  auto cl = make_test_problem(32, 1, 2);
  const SolveStats st = CGSolver::solve(*cl, base_config(SolverType::kCG));
  EXPECT_TRUE(st.converged);
  EXPECT_GT(st.outer_iters, 3);
  EXPECT_LT(relative_residual(*cl), 1e-10);
}

TEST(CG, IterationCountGrowsWithConditioning) {
  auto easy = make_test_problem(32, 1, 2, /*rx_ry=*/1.0);
  auto hard = make_test_problem(32, 1, 2, /*rx_ry=*/64.0);
  const auto cfg = base_config(SolverType::kCG);
  const auto st_easy = CGSolver::solve(*easy, cfg);
  const auto st_hard = CGSolver::solve(*hard, cfg);
  EXPECT_TRUE(st_easy.converged);
  EXPECT_TRUE(st_hard.converged);
  EXPECT_GT(st_hard.outer_iters, st_easy.outer_iters);
}

TEST(CG, TwoReductionsAndOneExchangePerIteration) {
  // The communication structure of §III-A: dot products are the scaling
  // bottleneck.
  auto cl = make_test_problem(24, 4, 2);
  const SolveStats st = CGSolver::solve(*cl, base_config(SolverType::kCG));
  const auto& stats = cl->stats();
  EXPECT_EQ(stats.reductions, 1 + 2LL * st.outer_iters);
  EXPECT_EQ(stats.exchange_calls, 1 + static_cast<long long>(st.outer_iters));
}

TEST(CG, DecompositionIndependentSolution) {
  auto ref = make_test_problem(30, 1, 2);
  const auto cfg = base_config(SolverType::kCG);
  ASSERT_TRUE(CGSolver::solve(*ref, cfg).converged);
  for (const int nranks : {2, 4, 6, 9}) {
    auto cl = make_test_problem(30, nranks, 2);
    ASSERT_TRUE(CGSolver::solve(*cl, cfg).converged) << nranks << " ranks";
    EXPECT_LT(max_field_diff(*ref, *cl, FieldId::kU), 1e-9)
        << nranks << " ranks";
  }
}

TEST(CG, PreconditionersPreserveSolutionAndHelp) {
  const auto run = [&](PreconType precon) {
    auto cl = make_test_problem(32, 2, 2, /*rx_ry=*/32.0);
    SolverConfig cfg = base_config(SolverType::kCG);
    cfg.precon = precon;
    const SolveStats st = CGSolver::solve(*cl, cfg);
    EXPECT_TRUE(st.converged) << to_string(precon);
    EXPECT_LT(relative_residual(*cl), 1e-9) << to_string(precon);
    return st.outer_iters;
  };
  const int none = run(PreconType::kNone);
  const int diag = run(PreconType::kJacobiDiag);
  const int block = run(PreconType::kJacobiBlock);
  // Block Jacobi must beat plain CG on this strongly-varying problem
  // (paper §IV-C1: ~40 % condition-number reduction).
  EXPECT_LT(block, none);
  EXPECT_LE(diag, none + 2);
}

TEST(Jacobi, ConvergesOnEasyProblem) {
  auto cl = make_test_problem(16, 2, 2, /*rx_ry=*/0.5);
  SolverConfig cfg = base_config(SolverType::kJacobi);
  cfg.eps = 1e-8;
  cfg.max_iters = 50000;
  const SolveStats st = JacobiSolver::solve(*cl, cfg);
  EXPECT_TRUE(st.converged);
  // One exchange and one reduction per sweep (checked before the
  // residual helper below adds its own communication).
  EXPECT_EQ(cl->stats().reductions, st.outer_iters);
  EXPECT_EQ(cl->stats().exchange_calls, st.outer_iters);
  EXPECT_LT(relative_residual(*cl), 1e-5);
}

TEST(Jacobi, NeedsFarMoreIterationsThanCG) {
  auto jac = make_test_problem(16, 1, 2, 2.0);
  auto cg = make_test_problem(16, 1, 2, 2.0);
  SolverConfig jcfg = base_config(SolverType::kJacobi);
  jcfg.eps = 1e-6;
  jcfg.max_iters = 100000;
  SolverConfig ccfg = base_config(SolverType::kCG);
  ccfg.eps = 1e-6;
  const auto ij = JacobiSolver::solve(*jac, jcfg).outer_iters;
  const auto ic = CGSolver::solve(*cg, ccfg).outer_iters;
  EXPECT_GT(ij, 3 * ic);
}

TEST(Chebyshev, MatchesCGSolution) {
  auto ref = make_test_problem(28, 1, 2, 8.0);
  ASSERT_TRUE(CGSolver::solve(*ref, base_config(SolverType::kCG)).converged);

  auto cl = make_test_problem(28, 1, 2, 8.0);
  SolverConfig cfg = base_config(SolverType::kChebyshev);
  cfg.eps = 1e-11;
  const SolveStats st = ChebyshevSolver::solve(*cl, cfg);
  EXPECT_TRUE(st.converged);
  EXPECT_GT(st.eigmax, st.eigmin);
  EXPECT_GT(st.eigmin, 0.0);
  EXPECT_LT(max_field_diff(*ref, *cl, FieldId::kU), 1e-7);
}

TEST(Chebyshev, FewReductionsPerIteration) {
  auto cl = make_test_problem(28, 4, 2, 8.0);
  SolverConfig cfg = base_config(SolverType::kChebyshev);
  cfg.cheby_check_interval = 25;
  const SolveStats st = ChebyshevSolver::solve(*cl, cfg);
  ASSERT_TRUE(st.converged);
  const long long cheby_steps = st.outer_iters - st.eigen_cg_iters;
  ASSERT_GT(cheby_steps, 0);
  // Reductions: 2 at setup + 2/prestep + one per check interval — far
  // fewer than CG's 2 per iteration over the Chebyshev phase.
  const long long expected = 2 + 2LL * st.eigen_cg_iters +
                             cheby_steps / cfg.cheby_check_interval;
  EXPECT_EQ(cl->stats().reductions, expected);
}

TEST(PPCG, MatchesCGSolution) {
  auto ref = make_test_problem(32, 1, 4, 16.0);
  ASSERT_TRUE(CGSolver::solve(*ref, base_config(SolverType::kCG)).converged);
  for (const PreconType precon :
       {PreconType::kNone, PreconType::kJacobiDiag,
        PreconType::kJacobiBlock}) {
    auto cl = make_test_problem(32, 2, 4, 16.0);
    SolverConfig cfg = base_config(SolverType::kPPCG);
    cfg.precon = precon;
    const SolveStats st = PPCGSolver::solve(*cl, cfg);
    EXPECT_TRUE(st.converged) << to_string(precon);
    EXPECT_LT(max_field_diff(*ref, *cl, FieldId::kU), 1e-7)
        << to_string(precon);
  }
}

TEST(PPCG, CutsGlobalReductionsVersusCG) {
  // The paper's core claim (§III-C): outer iterations — and hence dot
  // products — drop by ≈ √(κ_cg/κ_pcg) while total SpMV work stays
  // comparable.
  auto cg = make_test_problem(40, 4, 2, 32.0);
  auto pp = make_test_problem(40, 4, 2, 32.0);
  const SolveStats st_cg = CGSolver::solve(*cg, base_config(SolverType::kCG));
  const long long red_cg = cg->stats().reductions;
  SolverConfig pcfg = base_config(SolverType::kPPCG);
  pcfg.inner_steps = 10;
  const SolveStats st_pp = PPCGSolver::solve(*pp, pcfg);
  const long long red_pp = pp->stats().reductions;
  ASSERT_TRUE(st_cg.converged);
  ASSERT_TRUE(st_pp.converged);
  EXPECT_LT(red_pp, red_cg / 2) << "CPPCG must slash global reductions";
}

TEST(PPCG, EigenEstimatesBracketChebyshevNeeds) {
  auto cl = make_test_problem(32, 1, 2, 16.0);
  const SolveStats st = PPCGSolver::solve(*cl, base_config(SolverType::kPPCG));
  ASSERT_TRUE(st.converged);
  // The Lanczos Ritz values bracket part of the spectrum: both estimates
  // must be positive with eigmax above the λ = 1 conservation mode.
  // (eigmin may overshoot the true λmin = 1 when the residual has little
  // weight on the lowest modes — the outer CG absorbs that, which is why
  // CPPCG tolerates rough estimates.)
  EXPECT_GT(st.eigmin, 0.0);
  EXPECT_LT(st.eigmin, st.eigmax);
  EXPECT_GT(st.eigmax, 1.0);
}

TEST(SolverFacade, DispatchesEveryType) {
  for (const SolverType type : {SolverType::kJacobi, SolverType::kCG,
                                SolverType::kChebyshev, SolverType::kPPCG}) {
    auto cl = make_test_problem(20, 2, 2, 1.0);
    SolverConfig cfg = base_config(type);
    cfg.eps = 1e-8;
    cfg.max_iters = 100000;
    const SolveStats st = run_solver(*cl, cfg);
    EXPECT_TRUE(st.converged) << to_string(type);
    EXPECT_LT(relative_residual(*cl), 1e-4) << to_string(type);
  }
}

TEST(SolverConfigTest, ValidateRejectsBadCombos) {
  SolverConfig cfg;
  cfg.halo_depth = 4;
  cfg.type = SolverType::kCG;
  EXPECT_THROW(cfg.validate(), TeaError);  // powers only for PPCG
  cfg.type = SolverType::kPPCG;
  cfg.precon = PreconType::kJacobiBlock;
  EXPECT_THROW(cfg.validate(), TeaError);  // block + powers
  cfg.precon = PreconType::kJacobiDiag;
  EXPECT_NO_THROW(cfg.validate());
  cfg.eps = -1.0;
  EXPECT_THROW(cfg.validate(), TeaError);
}

TEST(SolverStats, ZeroRhsConvergesImmediately) {
  auto cl = make_test_problem(16, 1, 2);
  cl->for_each_chunk([](int, Chunk2D& c) {
    c.u().fill(0.0);
    c.u0().fill(0.0);
  });
  const SolveStats st = CGSolver::solve(*cl, base_config(SolverType::kCG));
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.outer_iters, 0);
}

}  // namespace
}  // namespace tealeaf
