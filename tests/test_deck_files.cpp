#include <gtest/gtest.h>

#include <fstream>

#include "driver/deck.hpp"
#include "driver/tealeaf_app.hpp"

namespace tealeaf {
namespace {

/// End-to-end validation of the tea.in files shipped in decks/: they
/// must parse, validate, and (coarsened) run a converged step — so the
/// samples users start from can never rot.
InputDeck load_deck(const std::string& name) {
  const std::string path = std::string(TEALEAF_DECKS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  return InputDeck::parse(in);
}

/// Shrink a deck so the smoke-run stays fast regardless of its shipped
/// resolution.
InputDeck coarsen(InputDeck deck, int n, int steps) {
  deck.x_cells = n;
  deck.y_cells = n;
  deck.end_time = 0.0;
  deck.end_step = steps;
  deck.solver.eps = 1e-8;
  return deck;
}

TEST(DeckFiles, CrookedPipeParsesToPaperConfiguration) {
  const InputDeck deck = load_deck("tea_bm_crooked_pipe.in");
  EXPECT_DOUBLE_EQ(deck.initial_timestep, 0.04);  // paper §V-B
  EXPECT_DOUBLE_EQ(deck.end_time, 15.0);
  EXPECT_EQ(deck.solver.type, SolverType::kPPCG);
  EXPECT_EQ(deck.solver.halo_depth, 4);
  ASSERT_EQ(deck.states.size(), 7u);
  EXPECT_DOUBLE_EQ(deck.states[0].density, 100.0);
  EXPECT_DOUBLE_EQ(deck.states.back().energy, 25.0);
}

TEST(DeckFiles, CrookedPipeRunsConverged) {
  TeaLeafApp app(coarsen(load_deck("tea_bm_crooked_pipe.in"), 48, 2), 2);
  const RunResult rr = app.run();
  EXPECT_TRUE(rr.all_converged);
  EXPECT_EQ(rr.steps, 2);
}

TEST(DeckFiles, ShortBenchmarkRunsConverged) {
  const InputDeck deck = load_deck("tea_bm_short.in");
  EXPECT_EQ(deck.solver.type, SolverType::kCG);
  TeaLeafApp app(coarsen(deck, 32, 3), 2);
  EXPECT_TRUE(app.run().all_converged);
}

TEST(DeckFiles, BlockJacobiDeckUsesThomasStrips) {
  const InputDeck deck = load_deck("tea_bm_block_jacobi.in");
  EXPECT_EQ(deck.solver.precon, PreconType::kJacobiBlock);
  ASSERT_EQ(deck.states.size(), 4u);
  EXPECT_EQ(deck.states[3].geometry, StateDef::Geometry::kPoint);
  TeaLeafApp app(coarsen(deck, 32, 2), 4);
  EXPECT_TRUE(app.run().all_converged);
}

TEST(DeckFiles, FusedCGDeckHalvesReductions) {
  const InputDeck deck = load_deck("tea_bm_fused_cg.in");
  EXPECT_TRUE(deck.solver.fuse_cg_reductions);
  TeaLeafApp app(coarsen(deck, 32, 1), 2);
  const SolveStats st = app.step();
  EXPECT_TRUE(st.converged);
  // One fused allreduce per iteration (+1 at setup).
  EXPECT_EQ(app.cluster().stats().reductions,
            1 + static_cast<long long>(st.outer_iters));
}

TEST(DeckFiles, Heat3DDeckRunsThroughTheUnifiedCore) {
  InputDeck deck = load_deck("tea_3d_heat.in");
  EXPECT_EQ(deck.dims, 3);
  EXPECT_EQ(deck.z_cells, 24);
  EXPECT_EQ(deck.solver.type, SolverType::kPPCG);
  EXPECT_TRUE(deck.states[2].has_cz);  // sphere, not cylinder
  // Coarsen all three axes for the smoke run.
  deck.x_cells = deck.y_cells = deck.z_cells = 10;
  deck.end_time = 0.0;
  deck.end_step = 1;
  deck.solver.eps = 1e-8;
  TeaLeafApp app(deck, 4);
  EXPECT_TRUE(app.run().all_converged);
  EXPECT_GT(app.field_summary().temp, 0.0);
}

TEST(DeckFiles, AllShippedDecksValidate) {
  for (const char* name :
       {"tea_bm_crooked_pipe.in", "tea_bm_short.in",
        "tea_bm_block_jacobi.in", "tea_bm_fused_cg.in", "tea_3d_heat.in"}) {
    EXPECT_NO_THROW(load_deck(name).validate()) << name;
  }
}

}  // namespace
}  // namespace tealeaf
