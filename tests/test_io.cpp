#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "io/json.hpp"
#include "io/ppm.hpp"
#include "io/vtk.hpp"

namespace tealeaf {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Ppm, HeatColourEndpoints) {
  const io::Rgb cold = io::heat_colour(0.0);
  const io::Rgb hot = io::heat_colour(1.0);
  EXPECT_EQ(cold.b, 255);  // blue = cold
  EXPECT_EQ(cold.r, 0);
  EXPECT_EQ(hot.r, 255);   // red = hot
  EXPECT_EQ(hot.b, 0);
  // Out-of-range values clamp instead of wrapping.
  const io::Rgb below = io::heat_colour(-3.0);
  EXPECT_EQ(below.b, 255);
  const io::Rgb above = io::heat_colour(7.0);
  EXPECT_EQ(above.r, 255);
}

TEST(Ppm, WritesWellFormedBinaryFile) {
  Field2D<double> f(10, 6, 0, 0.0);
  for (int k = 0; k < 6; ++k)
    for (int j = 0; j < 10; ++j) f(j, k) = j + k;
  const std::string path = tmp_path("heat.ppm");
  io::write_ppm(f, path);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 10);
  EXPECT_EQ(h, 6);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> pixels(10 * 6 * 3);
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(pixels.size()));
  // First written row is k = ny-1 (image top = domain top); its first
  // pixel is field(0, 5) = 5 of range [0,14] → cool colour (blue-ish).
  EXPECT_GT(static_cast<unsigned char>(pixels[2]),
            static_cast<unsigned char>(pixels[0]));
}

TEST(Ppm, ExplicitRangeClamps) {
  Field2D<double> f(4, 4, 0, 100.0);
  const std::string path = tmp_path("clamped.ppm");
  io::write_ppm(f, path, 0.0, 1.0);  // all values above hi
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
}

TEST(Csv, WritesRowsAndMirrorsInMemory) {
  const std::string path = tmp_path("series.csv");
  {
    io::CsvWriter csv(path);
    csv.header({"nodes", "seconds", "label"});
    csv.row(8, 1.25, "CG - 1");
    csv.row(16, 0.75, "PPCG - 16");
    ASSERT_EQ(csv.lines().size(), 3u);
    EXPECT_EQ(csv.lines()[0], "nodes,seconds,label");
    EXPECT_EQ(csv.lines()[1], "8,1.25,CG - 1");
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "nodes,seconds,label");
  std::getline(in, line);
  EXPECT_EQ(line, "8,1.25,CG - 1");
}

TEST(Csv, InMemoryOnlyWhenPathEmpty) {
  io::CsvWriter csv("");
  csv.row("a", 1);
  EXPECT_EQ(csv.lines().size(), 1u);
}

TEST(Vtk, EmitsStructuredPointsWithFields) {
  const GlobalMesh2D mesh(4, 3, 0.0, 4.0, 0.0, 3.0);
  Field2D<double> u(4, 3, 0, 1.5);
  Field2D<double> rho(4, 3, 0, 2.0);
  const std::string path = tmp_path("dump.vtk");
  io::write_vtk(mesh, {{"temperature", &u}, {"density", &rho}}, path);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("DATASET STRUCTURED_POINTS"), std::string::npos);
  EXPECT_NE(text.find("DIMENSIONS 4 3 1"), std::string::npos);
  EXPECT_NE(text.find("SCALARS temperature double 1"), std::string::npos);
  EXPECT_NE(text.find("SCALARS density double 1"), std::string::npos);
  EXPECT_NE(text.find("POINT_DATA 12"), std::string::npos);
}

TEST(Vtk, RejectsMismatchedShapes) {
  const GlobalMesh2D mesh(4, 3);
  Field2D<double> wrong(5, 3, 0, 0.0);
  EXPECT_THROW(
      io::write_vtk(mesh, {{"u", &wrong}}, tmp_path("bad.vtk")),
      TeaError);
}

TEST(Json, BuildsAndDumpsDeterministically) {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("name", "sweep");
  doc.set("cells", 3);
  doc.set("ok", true);
  io::JsonValue arr = io::JsonValue::array();
  arr.push_back(1.5);
  arr.push_back(io::JsonValue());  // null
  doc.set("values", std::move(arr));
  EXPECT_EQ(doc.dump(),
            R"({"name":"sweep","cells":3,"ok":true,"values":[1.5,null]})");
  // Insertion order is preserved, so repeated dumps are identical.
  EXPECT_EQ(doc.dump(), doc.dump());
}

TEST(Json, ParsesItsOwnOutputExactly) {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("label", "line1\nline2 \"quoted\" \\ tab\t");
  doc.set("tiny", 5.7338617125237919e-07);
  doc.set("negative", -42);
  const io::JsonValue back = io::JsonValue::parse(doc.dump(2));
  EXPECT_EQ(back.at("label").as_string(), doc.at("label").as_string());
  EXPECT_DOUBLE_EQ(back.at("tiny").as_number(), 5.7338617125237919e-07);
  EXPECT_DOUBLE_EQ(back.at("negative").as_number(), -42.0);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(io::JsonValue::parse("{"), TeaError);
  EXPECT_THROW(io::JsonValue::parse("[1, 2,]"), TeaError);
  EXPECT_THROW(io::JsonValue::parse("{\"a\": 1} trailing"), TeaError);
  EXPECT_THROW(io::JsonValue::parse("\"unterminated"), TeaError);
  EXPECT_THROW(io::JsonValue::parse("nope"), TeaError);
  // Numbers must consume their whole token — no valid-prefix parses.
  EXPECT_THROW(io::JsonValue::parse("[1.2.3]"), TeaError);
  EXPECT_THROW(io::JsonValue::parse("1-2"), TeaError);
  EXPECT_THROW(io::JsonValue::parse("+1"), TeaError);
}

TEST(Json, TypedAccessorsEnforceKinds) {
  const io::JsonValue v = io::JsonValue::parse(R"({"a": [1, 2]})");
  EXPECT_THROW(v.as_number(), TeaError);
  EXPECT_THROW(v.at("missing"), TeaError);
  EXPECT_EQ(v.at("a").size(), 2u);
  EXPECT_DOUBLE_EQ(v.at("a").at(1).as_number(), 2.0);
}

}  // namespace
}  // namespace tealeaf
