// Online routing refinement: measured-latency feedback, demotion,
// persistence.  Latencies are injected deterministically (either straight
// into RoutingTable::observe or through ServerOptions::learn_latency_hook)
// so every assertion is exact — no test here depends on wall-clock noise.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/decks.hpp"
#include "server/route_db.hpp"
#include "server/routing.hpp"
#include "server/solve_server.hpp"
#include "util/error.hpp"

namespace tealeaf {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Two-entry table on one measured shape: a "fast" chebyshev entry whose
/// prediction will turn out to be a lie, and an honest (pessimistically
/// predicted) fused-CG entry ranked second.
SweepReport two_route_report(int mesh_n, double cheby_seconds,
                             double cg_seconds) {
  SweepReport rep;
  rep.ranks = 2;
  rep.steps = 1;
  const auto add = [&](const std::string& solver, PreconType pre, bool fused,
                       double seconds, const std::string& precision) {
    SweepOutcome cell;
    cell.config.solver = solver;
    cell.config.precon = pre;
    cell.config.halo_depth = 1;
    cell.config.mesh_n = mesh_n;
    cell.config.fused = fused;
    cell.config.dims = 2;
    cell.config.precision = precision;
    cell.converged = true;
    cell.iterations = 50;
    cell.solve_seconds = seconds;
    rep.cells.push_back(cell);
  };
  add("chebyshev", PreconType::kNone, false, cheby_seconds, "double");
  add("cg", PreconType::kNone, true, cg_seconds, "double");
  return rep;
}

// ---------------------------------------------------------------------------
// RouteDatabase: statistics, merge, persistence
// ---------------------------------------------------------------------------

TEST(RouteDatabase, EwmaRecordSemantics) {
  RouteDatabase db;
  const RouteObservation& a =
      db.record("2d/n16/r2", "cg/none/d1/fused", 1.0, 0.5, 0.5);
  EXPECT_EQ(a.ewma_seconds, 1.0);  // first sample initialises exactly
  EXPECT_EQ(a.observations, 1);
  EXPECT_EQ(a.predicted_seconds, 0.5);

  const RouteObservation& b =
      db.record("2d/n16/r2", "cg/none/d1/fused", 3.0, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(b.ewma_seconds, 0.5 * 3.0 + 0.5 * 1.0);
  EXPECT_EQ(b.observations, 2);
  EXPECT_FALSE(b.demoted);

  const RouteObservation& c =
      db.record_breakdown("2d/n16/r2", "cg/none/d1/fused");
  EXPECT_EQ(c.observations, 3);
  EXPECT_EQ(c.breakdowns, 1);
  EXPECT_TRUE(c.demoted);  // a breakdown demotes immediately

  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.learned(3), 1);
  EXPECT_EQ(db.learned(4), 0);
  EXPECT_EQ(db.demotions(), 1);
  EXPECT_EQ(db.find("2d/n16/r2", "nope"), nullptr);
  EXPECT_EQ(db.find("3d/n16/r2", "cg/none/d1/fused"), nullptr);
}

TEST(RouteDatabase, SaveLoadSaveIsBitwiseStable) {
  RouteDatabase db;
  // Awkward doubles on purpose: the %.17g round-trip must hold exactly.
  db.record("2d/n48/r2", "chebyshev/none/d1", 0.1 + 0.2, 1e-7, 0.3);
  db.record("2d/n48/r2", "chebyshev/none/d1", 1.0 / 3.0, 1e-7, 0.3);
  db.record("2d/n48/r2", "cg/none/d1/fused", 5e-3, 5.0, 0.3);
  db.record("2d/n64/r2", "ppcg/jac_diag/d4/fused/mixed", 7e-3, 6.0, 0.3);
  db.record_breakdown("2d/n64/r2", "ppcg/jac_diag/d4/fused/mixed");

  const std::string p1 = tmp_path("route_db_a.json");
  const std::string p2 = tmp_path("route_db_b.json");
  db.save(p1);
  const RouteDatabase loaded = RouteDatabase::load(p1);
  loaded.save(p2);
  const std::string text1 = slurp(p1);
  EXPECT_FALSE(text1.empty());
  EXPECT_EQ(text1, slurp(p2));  // bitwise-stable save → load → save

  // Self-merge after a round-trip doubles the counts but keeps the EWMAs
  // (equal-weight average of equal values) — and the JSON stays stable.
  RouteDatabase merged = loaded;
  merged.merge(loaded);
  const RouteObservation* obs =
      merged.find("2d/n48/r2", "chebyshev/none/d1");
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->observations, 4);
  EXPECT_EQ(obs->ewma_seconds,
            loaded.find("2d/n48/r2", "chebyshev/none/d1")->ewma_seconds);
}

TEST(RouteDatabase, LoadRejectsUnknownVersionAndMissingFile) {
  const std::string path = tmp_path("route_db_future.json");
  std::ofstream(path) << "{\"version\": 99, \"shapes\": {}}\n";
  EXPECT_THROW((void)RouteDatabase::load(path), TeaError);
  EXPECT_THROW((void)RouteDatabase::load(tmp_path("does_not_exist.json")),
               TeaError);
  EXPECT_TRUE(
      RouteDatabase::load_if_exists(tmp_path("also_missing.json")).empty());
}

TEST(RouteDatabase, MergeNeverResurrectsFromStaleFewerObservations) {
  // Live database: the route was demoted on the strength of 5 samples.
  RouteDatabase live;
  for (int i = 0; i < 5; ++i) {
    live.record("2d/n48/r2", "chebyshev/none/d1", 0.5, 1e-7, 0.3);
  }
  live.demote("2d/n48/r2", "chebyshev/none/d1");

  // Stale database: an old snapshot with fewer observations and no
  // demotion must NOT clear the flag.
  RouteDatabase stale;
  stale.record("2d/n48/r2", "chebyshev/none/d1", 1e-7, 1e-7, 0.3);
  RouteDatabase a = live;
  a.merge(stale);
  EXPECT_TRUE(a.find("2d/n48/r2", "chebyshev/none/d1")->demoted);
  EXPECT_EQ(a.find("2d/n48/r2", "chebyshev/none/d1")->observations, 6);

  // Merging the other way round (stale absorbs live) must agree: the
  // side with MORE observations decides.
  RouteDatabase b = stale;
  b.merge(live);
  EXPECT_TRUE(b.find("2d/n48/r2", "chebyshev/none/d1")->demoted);

  // A tie keeps the demotion in force.
  RouteDatabase tie1, tie2;
  tie1.record("2d/n48/r2", "cg/none/d1/fused", 1.0, 1.0, 0.3);
  tie1.demote("2d/n48/r2", "cg/none/d1/fused");
  tie2.record("2d/n48/r2", "cg/none/d1/fused", 1.0, 1.0, 0.3);
  tie2.merge(tie1);
  EXPECT_TRUE(tie2.find("2d/n48/r2", "cg/none/d1/fused")->demoted);
}

TEST(RouteDatabase, MergeWeightsEwmasByObservationCount) {
  RouteDatabase a, b;
  a.record("2d/n16/r1", "cg/none/d1", 1.0, 1.0, 1.0);  // 1 obs, ewma 1.0
  b.record("2d/n16/r1", "cg/none/d1", 4.0, 1.0, 1.0);
  b.record("2d/n16/r1", "cg/none/d1", 4.0, 1.0, 1.0);
  b.record("2d/n16/r1", "cg/none/d1", 4.0, 1.0, 1.0);  // 3 obs, ewma 4.0
  a.merge(b);
  const RouteObservation* obs = a.find("2d/n16/r1", "cg/none/d1");
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->observations, 4);
  EXPECT_DOUBLE_EQ(obs->ewma_seconds, (1.0 * 1.0 + 4.0 * 3.0) / 4.0);
}

// ---------------------------------------------------------------------------
// RoutingTable: observation, demotion, promotion, precision isolation
// ---------------------------------------------------------------------------

TEST(RouteRefinement, MispredictedRouteDemotedAfterNObservations) {
  RoutingTable table =
      RoutingTable::from_sweep(two_route_report(16, 1e-7, 5.0));
  RouteLearnOptions learn;
  learn.min_observations = 3;
  learn.demote_ratio = 2.0;
  table.set_learning(learn);

  // Before any evidence, the lie ranks first.
  std::vector<RouteEntry> ranked = table.route(2, 16, 2);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].solver, "chebyshev");
  EXPECT_EQ(ranked[0].route_key(), "chebyshev/none/d1");
  EXPECT_EQ(ranked[0].predicted_seconds, 1e-7);

  // Two observations at 5 ms: not yet enough to demote.
  for (int i = 0; i < 2; ++i) {
    const ObserveOutcome o =
        table.observe(2, 16, 2, "chebyshev/none/d1", 5e-3, 1e-7);
    EXPECT_FALSE(o.demoted);
    EXPECT_EQ(o.observations, i + 1);
  }
  EXPECT_EQ(table.route(2, 16, 2)[0].solver, "chebyshev");

  // The third trips the ratio (5e-3 / 1e-7 >> 2): demoted, and the
  // next-ranked honest route takes over.
  const ObserveOutcome o =
      table.observe(2, 16, 2, "chebyshev/none/d1", 5e-3, 1e-7);
  EXPECT_TRUE(o.demoted);
  EXPECT_TRUE(o.newly_demoted);
  ranked = table.route(2, 16, 2);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].solver, "cg");
  EXPECT_TRUE(ranked[1].demoted);
  EXPECT_TRUE(ranked[1].learned);
  EXPECT_EQ(ranked[1].observations, 3);

  // The demotion is shape-local: another rank count is a different shape
  // with no evidence yet.
  EXPECT_EQ(table.route(2, 16, 1)[0].solver, "chebyshev");
}

TEST(RouteRefinement, FreshEvidenceInsideRatioPromotesAgain) {
  RoutingTable table =
      RoutingTable::from_sweep(two_route_report(16, 1e-2, 5.0));
  RouteLearnOptions learn;
  learn.min_observations = 2;
  learn.demote_ratio = 2.0;
  learn.ewma_alpha = 1.0;  // newest sample IS the EWMA: exact control
  table.set_learning(learn);

  table.observe(2, 16, 2, "chebyshev/none/d1", 0.05, 1e-2);
  const ObserveOutcome demoted =
      table.observe(2, 16, 2, "chebyshev/none/d1", 0.05, 1e-2);
  EXPECT_TRUE(demoted.newly_demoted);
  EXPECT_EQ(table.route(2, 16, 2)[0].solver, "cg");

  // Latency back inside the ratio (say the machine was warming up):
  // the route is promoted again — latency demotions are not tattoos.
  const ObserveOutcome promoted =
      table.observe(2, 16, 2, "chebyshev/none/d1", 1.5e-2, 1e-2);
  EXPECT_TRUE(promoted.newly_promoted);
  EXPECT_FALSE(promoted.demoted);
  EXPECT_EQ(table.route(2, 16, 2)[0].solver, "chebyshev");
}

TEST(RouteRefinement, BreakdownDemotesImmediatelyAndPermanently) {
  RoutingTable table =
      RoutingTable::from_sweep(two_route_report(16, 1e-2, 5.0));
  const ObserveOutcome o =
      table.observe_breakdown(2, 16, 2, "chebyshev/none/d1");
  EXPECT_TRUE(o.demoted);
  EXPECT_TRUE(o.newly_demoted);
  EXPECT_EQ(table.route(2, 16, 2)[0].solver, "cg");

  // Good latencies cannot clear a breakdown demotion: the solve FAILED
  // on this operator — only a rebuilt database forgives that.
  for (int i = 0; i < 5; ++i) {
    const ObserveOutcome again =
        table.observe(2, 16, 2, "chebyshev/none/d1", 1e-2, 1e-2);
    EXPECT_TRUE(again.demoted);
    EXPECT_FALSE(again.newly_promoted);
  }
  EXPECT_EQ(table.route(2, 16, 2)[0].solver, "cg");
}

TEST(RouteRefinement, PrecisionKeysNeverLeak) {
  // Same structural route at two precisions: the mixed cell's key carries
  // the "/mixed" suffix, so evidence against one can never demote the
  // other.
  SweepReport rep = two_route_report(16, 1e-7, 5.0);
  SweepOutcome mixed = rep.cells[0];
  mixed.config.precision = "mixed";
  rep.cells.push_back(mixed);
  RoutingTable table = RoutingTable::from_sweep(rep);
  RouteLearnOptions learn;
  learn.min_observations = 1;
  table.set_learning(learn);

  const std::vector<RouteEntry> before = table.route(2, 16, 2);
  ASSERT_EQ(before.size(), 3u);
  EXPECT_EQ(before[0].route_key(), "chebyshev/none/d1");
  EXPECT_EQ(before[1].route_key(), "chebyshev/none/d1/mixed");

  // Demote ONLY the mixed cell.
  const ObserveOutcome o =
      table.observe(2, 16, 2, "chebyshev/none/d1/mixed", 5e-3, 1e-7);
  EXPECT_TRUE(o.newly_demoted);

  const std::vector<RouteEntry> after = table.route(2, 16, 2);
  EXPECT_EQ(after[0].route_key(), "chebyshev/none/d1");  // fp64 untouched
  EXPECT_FALSE(after[0].demoted);
  EXPECT_EQ(after[0].observations, 0);
  EXPECT_TRUE(after.back().demoted);
  EXPECT_EQ(after.back().route_key(), "chebyshev/none/d1/mixed");

  // And the database keys are distinct cells.
  EXPECT_NE(table.database().find(RoutingTable::shape_key(2, 16, 2),
                                  "chebyshev/none/d1/mixed"),
            nullptr);
  EXPECT_EQ(table.database().find(RoutingTable::shape_key(2, 16, 2),
                                  "chebyshev/none/d1"),
            nullptr);
}

TEST(RouteRefinement, SeedDatabasePrimesEveryMeasuredCell) {
  const RoutingTable table =
      RoutingTable::from_sweep(two_route_report(16, 1e-2, 5.0));
  const RouteDatabase seed = table.seed_database();
  EXPECT_EQ(seed.size(), 2u);
  const RouteObservation* obs = seed.find("2d/n16/r2", "cg/none/d1/fused");
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->observations, 1);
  EXPECT_EQ(obs->ewma_seconds, 5.0);
  EXPECT_EQ(obs->predicted_seconds, 5.0);
}

TEST(RouteRefinement, LearnOptionsAreValidated) {
  RoutingTable table;
  RouteLearnOptions bad;
  bad.demote_ratio = 0.9;
  EXPECT_THROW(table.set_learning(bad), TeaError);
  bad = {};
  bad.min_observations = 0;
  EXPECT_THROW(table.set_learning(bad), TeaError);
  bad = {};
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(table.set_learning(bad), TeaError);
}

// ---------------------------------------------------------------------------
// SolveServer: the closed loop, end to end
// ---------------------------------------------------------------------------

/// The acceptance scenario: an adversarially wrong seed table (the
/// chebyshev entry claims 0.1 µs) plus a deterministic latency hook.  The
/// server must demote the lie within the run, converge onto the honest
/// route, persist the database, and a FRESH server loading it must route
/// correctly on request one.
TEST(RouteRefinement, ServerConvergesOntoFastestRouteAndPersists) {
  const std::string db_path = tmp_path("server_route_db.json");
  std::filesystem::remove(db_path);  // hermetic across reruns
  const auto make_options = [&] {
    ServerOptions opts;
    opts.routes = RoutingTable::from_sweep(two_route_report(16, 1e-7, 5.0));
    opts.learn_routes = true;
    opts.learn.min_observations = 3;
    opts.route_db_path = db_path;
    // Deterministic injected latency: every solve "measures" 5 ms, so the
    // chebyshev cell's observed/predicted ratio is 5e-3 / 1e-7 = 5e4.
    opts.learn_latency_hook = [](const std::string&, double) {
      return 5e-3;
    };
    return opts;
  };

  SolveServer server(make_options());
  std::vector<std::string> labels;
  for (int i = 0; i < 5; ++i) {
    SolveRequest req;
    req.deck = decks::layered_material(16, 1);
    req.deck.solver.eps = 1e-8;
    req.nranks = 2;
    const SolveResult res = server.solve_one(std::move(req));
    ASSERT_TRUE(res.ok());
    labels.push_back(res.route_label);
  }
  // Three observations demote the lie; requests 4 and 5 run the honest
  // fused-CG route.
  EXPECT_EQ(labels[0], "chebyshev/none/d1/n16");
  EXPECT_EQ(labels[2], "chebyshev/none/d1/n16");
  EXPECT_EQ(labels[3], "cg/none/d1/n16/fused");
  EXPECT_EQ(labels[4], "cg/none/d1/n16/fused");
  EXPECT_EQ(server.stats().route_observations, 5);
  EXPECT_EQ(server.stats().demotions, 1);
  server.save_route_db();

  // Fresh server, same wrong table, database loaded at construction:
  // request ONE already routes onto the honest entry.
  SolveServer fresh(make_options());
  SolveRequest req;
  req.deck = decks::layered_material(16, 1);
  req.deck.solver.eps = 1e-8;
  req.nranks = 2;
  const SolveResult res = fresh.solve_one(std::move(req));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.route_label, "cg/none/d1/n16/fused");
  EXPECT_TRUE(res.route_learned);
  EXPECT_GE(res.route_observations, 1);
}

TEST(RouteRefinement, RunHonoursDeckLearningKeys) {
  const std::string db_path = tmp_path("run_route_db.json");
  std::filesystem::remove(db_path);  // hermetic across reruns
  ServerOptions opts;
  opts.routes = RoutingTable::from_sweep(two_route_report(16, 1e-7, 5.0));
  opts.learn.min_observations = 2;
  opts.learn_latency_hook = [](const std::string&, double) { return 5e-3; };
  SolveServer server(std::move(opts));

  InputDeck deck = decks::layered_material(16, 6);
  deck.solver.eps = 1e-8;
  deck.route_learn = true;
  deck.route_db = db_path;
  deck.route_demote_ratio = 3.0;
  const RunResult run = server.run(deck, 2);
  EXPECT_TRUE(run.all_converged);
  EXPECT_EQ(server.options().learn.demote_ratio, 3.0);

  // The run demoted the lie after two steps and saved the database.
  const RouteDatabase db = RouteDatabase::load(db_path);
  const RouteObservation* cheby =
      db.find("2d/n16/r2", "chebyshev/none/d1");
  ASSERT_NE(cheby, nullptr);
  EXPECT_TRUE(cheby->demoted);
  const RouteObservation* cg = db.find("2d/n16/r2", "cg/none/d1/fused");
  ASSERT_NE(cg, nullptr);
  EXPECT_GE(cg->observations, 2);
  EXPECT_FALSE(cg->demoted);
}

TEST(RouteRefinement, SaveRouteDbRequiresConfiguredPath) {
  SolveServer server{ServerOptions{}};
  EXPECT_THROW(server.save_route_db(), TeaError);
}

}  // namespace
}  // namespace tealeaf
