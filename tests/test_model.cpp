#include <gtest/gtest.h>

#include "model/machine.hpp"
#include "solvers/cg.hpp"
#include "model/scaling.hpp"
#include "model/trace.hpp"
#include "solvers/solver.hpp"
#include "test_helpers.hpp"

namespace tealeaf {
namespace {

using testing::make_test_problem;

/// The heart of the substitution argument (DESIGN.md §2.2): the analytic
/// trace must reproduce the counted communication of real runs exactly —
/// same exchanges, same messages, same bytes, same reductions.
struct TraceCase {
  SolverType type;
  PreconType precon;
  int halo_depth;
  int nranks;
};

class TraceValidation : public ::testing::TestWithParam<TraceCase> {};

TEST_P(TraceValidation, PredictedCommCountsMatchCountedStats) {
  const TraceCase tc = GetParam();
  SolverConfig cfg;
  cfg.type = tc.type;
  cfg.precon = tc.precon;
  cfg.halo_depth = tc.halo_depth;
  cfg.eps = (tc.type == SolverType::kJacobi) ? 1e-6 : 1e-10;
  cfg.max_iters = 100000;
  cfg.eigen_cg_iters = 10;
  cfg.inner_steps = 9;

  const int n = 36;
  auto cl = make_test_problem(n, tc.nranks, std::max(2, tc.halo_depth), 8.0);
  const SolveStats st = run_solver(*cl, cfg);
  ASSERT_TRUE(st.converged);

  const SolverRunSummary run = SolverRunSummary::from(cfg, st, n);
  const CommCounts predicted =
      predict_comm_counts(run, cl->decomposition(), cl->mesh());
  const CommStats& counted = cl->stats();

  EXPECT_EQ(predicted.exchange_calls, counted.exchange_calls);
  EXPECT_EQ(predicted.messages, counted.messages);
  EXPECT_EQ(predicted.message_bytes, counted.message_bytes);
  EXPECT_EQ(predicted.reductions, counted.reductions);
}

INSTANTIATE_TEST_SUITE_P(
    SolversAndDepths, TraceValidation,
    ::testing::Values(
        TraceCase{SolverType::kCG, PreconType::kNone, 1, 4},
        TraceCase{SolverType::kCG, PreconType::kJacobiDiag, 1, 6},
        TraceCase{SolverType::kCG, PreconType::kJacobiBlock, 1, 4},
        TraceCase{SolverType::kJacobi, PreconType::kNone, 1, 4},
        TraceCase{SolverType::kChebyshev, PreconType::kNone, 1, 4},
        TraceCase{SolverType::kPPCG, PreconType::kNone, 1, 4},
        TraceCase{SolverType::kPPCG, PreconType::kNone, 2, 4},
        TraceCase{SolverType::kPPCG, PreconType::kNone, 4, 6},
        TraceCase{SolverType::kPPCG, PreconType::kJacobiDiag, 3, 9},
        TraceCase{SolverType::kPPCG, PreconType::kNone, 8, 2}),
    [](const auto& info) {
      const TraceCase& tc = info.param;
      return std::string(to_string(tc.type)) + "_" +
             to_string(tc.precon) + "_d" + std::to_string(tc.halo_depth) +
             "_r" + std::to_string(tc.nranks);
    });

/// The substitution argument extends to the precision axis: fp32-active
/// solves move 4-byte halos and the mixed refinement loop adds its fp64
/// guard exchanges — the analytic trace must reproduce both byte-exactly.
TEST(TraceValidationPrecision, ReducedPrecisionCommCountsMatchCountedStats) {
  struct Case {
    SolverType type;
    Precision precision;
    int halo_depth;
    double eps;
  };
  const Case cases[] = {
      {SolverType::kCG, Precision::kSingle, 1, 1e-4},
      {SolverType::kJacobi, Precision::kSingle, 1, 1e-4},
      {SolverType::kCG, Precision::kMixed, 1, 1e-8},
      {SolverType::kPPCG, Precision::kMixed, 2, 1e-8},
  };
  for (const Case& c : cases) {
    SolverConfig cfg;
    cfg.type = c.type;
    cfg.precision = c.precision;
    cfg.halo_depth = c.halo_depth;
    cfg.eps = c.eps;
    cfg.max_iters = 100000;
    cfg.eigen_cg_iters = 10;
    cfg.inner_steps = 9;

    const int n = 36;
    auto cl = make_test_problem(n, 4, std::max(2, c.halo_depth), 8.0);
    const SolveStats st = run_solver(*cl, cfg);
    ASSERT_TRUE(st.converged) << to_string(c.type);

    const SolverRunSummary run = SolverRunSummary::from(cfg, st, n);
    const CommCounts predicted =
        predict_comm_counts(run, cl->decomposition(), cl->mesh());
    const CommStats& counted = cl->stats();
    EXPECT_EQ(predicted.exchange_calls, counted.exchange_calls)
        << to_string(c.type);
    EXPECT_EQ(predicted.messages, counted.messages) << to_string(c.type);
    EXPECT_EQ(predicted.message_bytes, counted.message_bytes)
        << to_string(c.type);
    EXPECT_EQ(predicted.reductions, counted.reductions) << to_string(c.type);
  }
}

TEST(ScalingModelTest, ReducedPrecisionPricesBelowFp64PerIteration) {
  SolverRunSummary run;
  run.type = SolverType::kCG;
  run.outer_iters = 4000;
  run.mesh_n = 4000;
  const ScalingModel model(machines::titan(),
                           GlobalMesh2D(4000, 4000, 0, 10, 0, 10), 10);
  const double fp64 = model.run_seconds(run, 4);
  run.precision = Precision::kSingle;
  const double fp32 = model.run_seconds(run, 4);
  run.precision = Precision::kMixed;
  run.refine_steps = 2;
  const double mixed = model.run_seconds(run, 4);
  // Bandwidth-bound at this scale: halved element size must show, but the
  // per-sweep launch overheads keep it under a full 2x.
  EXPECT_LT(fp32, 0.75 * fp64);
  EXPECT_GT(fp32, 0.4 * fp64);
  // The refinement guard costs something, but far less than it saves.
  EXPECT_GT(mixed, fp32);
  EXPECT_LT(mixed, fp64);
}

TEST(ExchangeCounts, MatchesSingleExchange) {
  const GlobalMesh2D mesh(30, 30);
  for (const int nranks : {1, 2, 4, 6, 9}) {
    SimCluster2D cl(mesh, nranks, 3);
    cl.exchange({FieldId::kU, FieldId::kP}, 3);
    const CommCounts cc = exchange_counts(cl.decomposition(), 3, 2);
    EXPECT_EQ(cc.messages, cl.stats().messages) << nranks;
    EXPECT_EQ(cc.message_bytes, cl.stats().message_bytes) << nranks;
  }
}

TEST(InnerPlan, MatchesPaperSchedule) {
  // d=1: one {sd} exchange per inner step.
  auto p = ppcg_inner_exchange_plan(10, 1);
  EXPECT_EQ(p.single_field_rounds, 10);
  EXPECT_EQ(p.dual_field_rounds, 0);
  // d=4, m=10: initial {rtemp} + ⌊10/4⌋ dual rounds.
  p = ppcg_inner_exchange_plan(10, 4);
  EXPECT_EQ(p.single_field_rounds, 1);
  EXPECT_EQ(p.dual_field_rounds, 2);
  // d=16 > m: only the initial exchange — fully communication-free inner.
  p = ppcg_inner_exchange_plan(10, 16);
  EXPECT_EQ(p.single_field_rounds, 1);
  EXPECT_EQ(p.dual_field_rounds, 0);
}

TEST(Projection, ScalesOuterItersLinearly) {
  SolverRunSummary run;
  run.type = SolverType::kCG;
  run.outer_iters = 100;
  run.eigen_cg_iters = 20;
  run.mesh_n = 500;
  const SolverRunSummary proj = project_to_mesh(run, 4000);
  EXPECT_EQ(proj.outer_iters, 800);
  EXPECT_EQ(proj.eigen_cg_iters, 20);  // fixed configuration cost
  EXPECT_EQ(proj.mesh_n, 4000);
  // Identity projection is a no-op.
  const SolverRunSummary same = project_to_mesh(run, 500);
  EXPECT_EQ(same.outer_iters, 100);
}

TEST(Projection, EmpiricalIterationScalingIsRoughlyLinear) {
  // Validate the κ ∝ n² ⇒ iters ∝ n rule on real solves: doubling the
  // mesh should roughly double CG iterations (fixed dt).
  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  cfg.eps = 1e-8;
  int iters[2] = {0, 0};
  const int sizes[2] = {24, 48};
  for (int i = 0; i < 2; ++i) {
    const GlobalMesh2D mesh(sizes[i], sizes[i], 0.0, 10.0, 0.0, 10.0);
    SimCluster2D cl(mesh, 1, 2);
    cl.for_each_chunk([&](int, Chunk2D& c) {
      c.density().fill(1.0);
      c.energy().fill(1.0);
      for (int k = 0; k < c.ny(); ++k)
        for (int j = 0; j < c.nx(); ++j)
          c.energy()(j, k) = (j < c.nx() / 2) ? 5.0 : 1.0;
    });
    cl.exchange({FieldId::kDensity, FieldId::kEnergy1}, 2);
    const double dx = mesh.dx();
    cl.for_each_chunk([&](int, Chunk2D& c) {
      kernels::init_u_u0(c);
      kernels::init_conduction(c, kernels::Coefficient::kConductivity,
                               0.04 / (dx * dx), 0.04 / (dx * dx));
    });
    iters[i] = CGSolver::solve(cl, cfg).outer_iters;
  }
  const double ratio = static_cast<double>(iters[1]) / iters[0];
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.8);
}

TEST(Machines, TableOneRoster) {
  const auto t = machines::titan();
  const auto p = machines::piz_daint();
  const auto sh = machines::spruce_hybrid();
  const auto sm = machines::spruce_mpi();
  EXPECT_TRUE(t.is_gpu);
  EXPECT_TRUE(p.is_gpu);
  EXPECT_FALSE(sh.is_gpu);
  EXPECT_EQ(sm.ranks_per_node, 20);  // 2 × 10-core E5-2680v2
  EXPECT_EQ(sh.ranks_per_node, 1);
  // Same GPU on both Cray machines; the interconnect differs.
  EXPECT_DOUBLE_EQ(t.mem_bw_gbs, p.mem_bw_gbs);
  EXPECT_GT(t.net_alpha_us, p.net_alpha_us);
  EXPECT_LT(t.net_bw_gbs, p.net_bw_gbs);
}

TEST(ScalingModelTest, StrongScalingThenPlateau) {
  // CG on Titan: time must drop with nodes while compute-bound, then
  // flatten/rise once the 4000² problem starves the GPUs (paper Fig. 5:
  // knee around 1k nodes).
  SolverRunSummary run;
  run.type = SolverType::kCG;
  run.outer_iters = 4000;
  run.mesh_n = 4000;
  const ScalingModel model(machines::titan(),
                           GlobalMesh2D(4000, 4000, 0, 10, 0, 10), 10);
  const double t1 = model.run_seconds(run, 1);
  const double t64 = model.run_seconds(run, 64);
  const double t1024 = model.run_seconds(run, 1024);
  const double t8192 = model.run_seconds(run, 8192);
  EXPECT_LT(t64, t1 / 20.0);
  EXPECT_LT(t1024, t64);
  EXPECT_GT(t8192, t1024 * 0.5);  // at best marginal gains past the knee
}

TEST(ScalingModelTest, DeepHaloBeatsShallowAtScale) {
  SolverRunSummary run;
  run.type = SolverType::kPPCG;
  run.precon = PreconType::kNone;
  run.inner_steps = 10;
  run.eigen_cg_iters = 20;
  run.outer_iters = 400;
  run.mesh_n = 4000;
  const ScalingModel model(machines::titan(),
                           GlobalMesh2D(4000, 4000, 0, 10, 0, 10), 10);
  run.halo_depth = 1;
  const double shallow = model.run_seconds(run, 4096);
  run.halo_depth = 16;
  const double deep = model.run_seconds(run, 4096);
  EXPECT_LT(deep, shallow);
}

TEST(ScalingModelTest, EfficiencyHelper) {
  ScalingSeries s;
  s.label = "test";
  s.points = {{1, 100.0}, {2, 50.0}, {4, 30.0}, {8, 10.0}};
  const auto eff = scaling_efficiency(s);
  ASSERT_EQ(eff.size(), 4u);
  EXPECT_DOUBLE_EQ(eff[0], 1.0);
  EXPECT_DOUBLE_EQ(eff[1], 1.0);          // perfect halving
  EXPECT_NEAR(eff[2], 100.0 / 120.0, 1e-12);
  EXPECT_DOUBLE_EQ(eff[3], 1.25);         // super-linear
}

TEST(ScalingModelTest, AmgBaselinePeaksEarly) {
  // Fig. 7's qualitative shape: the AMG baseline scales to a point, then
  // coarse-level latency dominates and more nodes stop helping well
  // before the CPPCG curves peak.
  const ScalingModel model(machines::spruce_hybrid(),
                           GlobalMesh2D(4000, 4000, 0, 10, 0, 10), 10);
  const double t8 = model.amg_run_seconds(20, 8);
  const double t32 = model.amg_run_seconds(20, 32);
  const double t512 = model.amg_run_seconds(20, 512);
  EXPECT_LT(t32, t8);
  EXPECT_GT(t512, t32 * 0.8);  // little to no gain at 512
}

TEST(ScalingModelTest, SweepProducesLabelledSeries) {
  SolverRunSummary run;
  run.type = SolverType::kCG;
  run.outer_iters = 100;
  run.mesh_n = 512;
  const ScalingModel model(machines::piz_daint(),
                           GlobalMesh2D(512, 512, 0, 10, 0, 10), 5);
  const auto series = model.sweep(run, "CG - 1", {1, 2, 4, 8});
  EXPECT_EQ(series.label, "CG - 1");
  ASSERT_EQ(series.points.size(), 4u);
  for (const auto& pt : series.points) EXPECT_GT(pt.seconds, 0.0);
}

}  // namespace
}  // namespace tealeaf
