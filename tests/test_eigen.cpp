#include <gtest/gtest.h>

#include <cmath>

#include "solvers/eigen_estimate.hpp"
#include "util/error.hpp"
#include "solvers/tridiag_eigen.hpp"

namespace tealeaf {
namespace {

TEST(TridiagEigen, DiagonalMatrixReturnsSortedDiagonal) {
  const auto eigs = tridiag_eigenvalues({3.0, 1.0, 2.0}, {0.0, 0.0});
  ASSERT_EQ(eigs.size(), 3u);
  EXPECT_DOUBLE_EQ(eigs[0], 1.0);
  EXPECT_DOUBLE_EQ(eigs[1], 2.0);
  EXPECT_DOUBLE_EQ(eigs[2], 3.0);
}

TEST(TridiagEigen, TwoByTwoAnalytic) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  const auto eigs = tridiag_eigenvalues({2.0, 2.0}, {1.0});
  ASSERT_EQ(eigs.size(), 2u);
  EXPECT_NEAR(eigs[0], 1.0, 1e-12);
  EXPECT_NEAR(eigs[1], 3.0, 1e-12);
}

TEST(TridiagEigen, OneByOne) {
  const auto eigs = tridiag_eigenvalues({5.0}, {});
  ASSERT_EQ(eigs.size(), 1u);
  EXPECT_DOUBLE_EQ(eigs[0], 5.0);
}

TEST(TridiagEigen, DiscreteLaplacianSpectrum) {
  // T = tridiag(-1, 2, -1) of size n has eigenvalues 2−2cos(iπ/(n+1)).
  const int n = 25;
  std::vector<double> d(n, 2.0), e(n - 1, -1.0);
  const auto eigs = tridiag_eigenvalues(d, e);
  ASSERT_EQ(eigs.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double expect = 2.0 - 2.0 * std::cos(M_PI * (i + 1) / (n + 1));
    EXPECT_NEAR(eigs[i], expect, 1e-10) << "eigenvalue " << i;
  }
}

TEST(TridiagEigen, LargeRandomSPDTraceAndPositivity) {
  // Diagonally dominant symmetric tridiagonal: all eigenvalues positive,
  // and their sum equals the trace.
  const int n = 64;
  std::vector<double> d(n), e(n - 1);
  double trace = 0.0;
  for (int i = 0; i < n; ++i) {
    d[i] = 3.0 + 0.01 * i;
    trace += d[i];
  }
  for (int i = 0; i < n - 1; ++i) e[i] = 1.0 + 0.002 * i;
  const auto eigs = tridiag_eigenvalues(d, e);
  double sum = 0.0;
  for (const double x : eigs) {
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, trace, 1e-9 * trace);
}

TEST(TridiagEigen, InputValidation) {
  EXPECT_THROW(tridiag_eigenvalues({}, {}), TeaError);
  EXPECT_THROW(tridiag_eigenvalues({1.0, 2.0}, {}), TeaError);
}

TEST(EigenEstimate, RecoversSpectrumOfKnownRecurrence) {
  // For A = diag(λ) CG converges in ≤ n steps; feed the Lanczos identity
  // with synthetic alphas/betas from a real CG run is covered by the
  // solver tests — here check the wiring: a 2-step recurrence with
  // alpha = 1, beta = 0 gives T = I ⇒ both eigenvalues 1.
  CGRecurrence rec;
  rec.alphas = {1.0, 1.0};
  rec.betas = {0.0, 0.0};
  const auto est = estimate_eigenvalues(rec, 1.0, 1.0);
  EXPECT_NEAR(est.eigmin, 1.0, 1e-12);
  EXPECT_NEAR(est.eigmax, 1.0, 1e-12);
  EXPECT_EQ(est.lanczos_steps, 2);
}

TEST(EigenEstimate, SafetyFactorsWidenTheInterval) {
  CGRecurrence rec;
  rec.alphas = {0.5, 0.25};
  rec.betas = {0.2, 0.1};
  const auto tight = estimate_eigenvalues(rec, 1.0, 1.0);
  const auto wide = estimate_eigenvalues(rec, 0.9, 1.1);
  EXPECT_NEAR(wide.eigmin, 0.9 * tight.eigmin, 1e-12);
  EXPECT_NEAR(wide.eigmax, 1.1 * tight.eigmax, 1e-12);
  EXPECT_LT(wide.eigmin, wide.eigmax);
}

TEST(EigenEstimate, RejectsDegenerateInput) {
  CGRecurrence rec;
  rec.alphas = {1.0};
  rec.betas = {};
  EXPECT_THROW(estimate_eigenvalues(rec, 1.0, 1.0), TeaError);
  rec.alphas = {1.0, 0.0};
  rec.betas = {0.1};
  EXPECT_THROW(estimate_eigenvalues(rec, 1.0, 1.0), TeaError);
}

}  // namespace
}  // namespace tealeaf
