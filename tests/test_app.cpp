#include <gtest/gtest.h>

#include <cmath>

#include "comm/gather.hpp"
#include "driver/decks.hpp"
#include "driver/tealeaf_app.hpp"

namespace tealeaf {
namespace {

TEST(App, OneStepConvergesAndUpdatesEnergy) {
  TeaLeafApp app(decks::hot_block(24, 1), 2);
  const FieldSummary before = app.field_summary();
  const SolveStats st = app.step();
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(app.steps_taken(), 1);
  const FieldSummary after = app.field_summary();
  // Diffusion conserves total internal energy (Neumann boundaries and the
  // operator's unit column sums): Σρe·dA is invariant.
  EXPECT_NEAR(after.ie, before.ie, 1e-8 * std::fabs(before.ie));
  EXPECT_NEAR(after.temp, before.temp, 1e-8 * std::fabs(before.temp));
  // Mass and volume are untouched by the solve.
  EXPECT_DOUBLE_EQ(after.mass, before.mass);
  EXPECT_DOUBLE_EQ(after.volume, before.volume);
}

TEST(App, HeatFlowsFromHotBlockOutward) {
  TeaLeafApp app(decks::hot_block(24, 4), 1);
  const Field2D<double> u0 = gather_field(app.cluster(), FieldId::kU);
  app.run();
  const Field2D<double> u1 = gather_field(app.cluster(), FieldId::kU);
  // Hot centre (block is [2,4]² of a 10×10 domain → cells ~[5..9])
  EXPECT_LT(u1(7, 7), u0(7, 7));      // hot spot cools
  EXPECT_GT(u1(20, 20), u0(20, 20));  // far corner warms
}

TEST(App, MaxPrincipleHolds) {
  // The implicit diffusion update is an M-matrix solve: the solution must
  // stay within the initial min/max.
  TeaLeafApp app(decks::layered_material(32, 3), 4);
  const Field2D<double> u0 = gather_field(app.cluster(), FieldId::kU);
  double lo = u0(0, 0), hi = u0(0, 0);
  for (int k = 0; k < u0.ny(); ++k)
    for (int j = 0; j < u0.nx(); ++j) {
      lo = std::min(lo, u0(j, k));
      hi = std::max(hi, u0(j, k));
    }
  app.run();
  const Field2D<double> u1 = gather_field(app.cluster(), FieldId::kU);
  for (int k = 0; k < u1.ny(); ++k)
    for (int j = 0; j < u1.nx(); ++j) {
      EXPECT_GE(u1(j, k), lo - 1e-9);
      EXPECT_LE(u1(j, k), hi + 1e-9);
    }
}

TEST(App, RunHonoursStepCountAndHistory) {
  TeaLeafApp app(decks::hot_block(16, 5), 1);
  const RunResult rr = app.run();
  EXPECT_EQ(rr.steps, 5);
  EXPECT_TRUE(rr.all_converged);
  EXPECT_EQ(app.history().size(), 5u);
  EXPECT_NEAR(rr.sim_time, 5 * 0.04, 1e-12);
  EXPECT_GT(rr.total_outer_iters, 0);
}

TEST(App, DecompositionInvariantPhysics) {
  InputDeck deck = decks::layered_material(30, 2);
  TeaLeafApp ref(deck, 1);
  ref.run();
  const Field2D<double> u_ref = gather_field(ref.cluster(), FieldId::kU);
  for (const int nranks : {2, 5, 6}) {
    TeaLeafApp app(deck, nranks);
    app.run();
    const Field2D<double> u = gather_field(app.cluster(), FieldId::kU);
    double worst = 0.0;
    for (int k = 0; k < u.ny(); ++k)
      for (int j = 0; j < u.nx(); ++j)
        worst = std::max(worst, std::fabs(u(j, k) - u_ref(j, k)));
    EXPECT_LT(worst, 1e-8) << nranks << " ranks";
  }
}

TEST(App, SolverChoiceDoesNotChangePhysics) {
  InputDeck deck = decks::layered_material(24, 2);
  deck.solver.eps = 1e-12;
  deck.solver.type = SolverType::kCG;
  TeaLeafApp cg(deck, 2);
  cg.run();
  deck.solver.type = SolverType::kPPCG;
  deck.solver.halo_depth = 3;
  TeaLeafApp pp(deck, 2);
  pp.run();
  const Field2D<double> a = gather_field(cg.cluster(), FieldId::kU);
  const Field2D<double> b = gather_field(pp.cluster(), FieldId::kU);
  for (int k = 0; k < a.ny(); ++k)
    for (int j = 0; j < a.nx(); ++j)
      EXPECT_NEAR(a(j, k), b(j, k), 1e-7);
}

TEST(App, CrookedPipeHeatStaysInPipeEarly) {
  // After a few steps the pipe must be far hotter than the dense material
  // away from the inlet (conduction contrast ~1000×).
  InputDeck deck = decks::crooked_pipe(64, 5);
  TeaLeafApp app(deck, 2);
  const RunResult rr = app.run();
  EXPECT_TRUE(rr.all_converged);
  const Field2D<double> u = gather_field(app.cluster(), FieldId::kU);
  const GlobalMesh2D mesh(64, 64, 0, 10, 0, 10);
  const auto cell = [&](double x, double y) {
    return u(static_cast<int>(x / mesh.dx()), static_cast<int>(y / mesh.dy()));
  };
  const double pipe_mid = cell(2.5, 7.5);   // inside first segment
  const double dense_far = cell(5.0, 9.0);  // background, away from pipe
  EXPECT_GT(pipe_mid, 10.0 * dense_far);
}

TEST(App, SummaryMatchesHandComputedInitialState) {
  // 16×16 mesh of a 10×10 domain: background ρ=1, e=0.01 plus a [2,4]²
  // block at e=10.
  TeaLeafApp app(decks::hot_block(16, 1), 1);
  const FieldSummary fs = app.field_summary();
  EXPECT_NEAR(fs.volume, 100.0, 1e-12);
  EXPECT_NEAR(fs.mass, 100.0, 1e-12);  // ρ = 1 everywhere
  // Block covers cells with centres in [2,4)²: with dx = 0.625 that is
  // cells 4..6 in each axis ⇒ 3×3 cells? centre(j) = (j+0.5)·0.625.
  int inside = 0;
  for (int j = 0; j < 16; ++j) {
    const double x = (j + 0.5) * 0.625;
    if (x >= 2.0 && x < 4.0) ++inside;
  }
  const double cell_area = 0.625 * 0.625;
  const double expect_ie =
      (256 - inside * inside) * 0.01 * cell_area +
      static_cast<double>(inside) * inside * 10.0 * cell_area;
  EXPECT_NEAR(fs.ie, expect_ie, 1e-9 * expect_ie);
}

}  // namespace
}  // namespace tealeaf
