// Dimension-generic core guarantees:
//  * Cross-dimension consistency — a z-uniform 3-D problem with a single
//    cell-plane (nz = 1) has Kz ≡ 0, so the 7-point operator degenerates
//    to the 5-point one and EVERY per-iteration scalar (rro, alpha, beta),
//    iteration count and iterate must reproduce the 2-D solver's exactly,
//    for every solver × preconditioner × execution-engine cell.
//  * 3-D engine equivalence — the fused and tiled execution engines are
//    bitwise identical to the unfused path in 3-D, enforced exactly the
//    way test_tiled_engine.cpp enforces it in 2-D.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "solvers/cg.hpp"
#include "solvers/solver.hpp"
#include "test_helpers.hpp"

namespace tealeaf {
namespace {

using testing::make_test_problem;
using testing::make_test_problem_3d;
using testing::max_field_diff;

/// The single-plane slab now lives in test_helpers (shared with the 3-D
/// multigrid suite in test_amg.cpp).
std::unique_ptr<SimCluster> make_slab_problem(int n, int nranks,
                                              int halo_depth,
                                              double rx_ry = 4.0) {
  return testing::make_test_problem_slab3d(n, nranks, halo_depth, rx_ry);
}

TEST(CrossDimension, SlabCGRecurrenceScalarsMatch2DExactly) {
  // The satellite contract in its sharpest form: rro and every alpha/beta
  // of the CG recurrence — the scalars that steer the whole solve — are
  // bitwise equal between the 2-D run and the single-plane 3-D run.
  for (const PreconType precon :
       {PreconType::kNone, PreconType::kJacobiDiag,
        PreconType::kJacobiBlock}) {
    auto d2 = make_test_problem(16, 2, 2);
    auto d3 = make_slab_problem(16, 2, 2);
    double rro2 = cg_setup(*d2, precon);
    double rro3 = cg_setup(*d3, precon);
    ASSERT_EQ(rro2, rro3) << to_string(precon);
    CGRecurrence rec2, rec3;
    for (int i = 0; i < 8; ++i) {
      rro2 = cg_iteration(*d2, precon, rro2, &rec2, nullptr);
      rro3 = cg_iteration(*d3, precon, rro3, &rec3, nullptr);
      ASSERT_EQ(rro2, rro3) << to_string(precon) << " iter " << i;
    }
    ASSERT_EQ(rec2.alphas.size(), rec3.alphas.size());
    for (std::size_t i = 0; i < rec2.alphas.size(); ++i) {
      EXPECT_EQ(rec2.alphas[i], rec3.alphas[i])
          << to_string(precon) << " alpha " << i;
      EXPECT_EQ(rec2.betas[i], rec3.betas[i])
          << to_string(precon) << " beta " << i;
    }
  }
}

struct EngineCell {
  SolverType type;
  PreconType precon;
  bool chrono;
  bool fused;
  int tile_rows;
  int halo_depth = 1;
};

std::string cell_name(const EngineCell& ec) {
  std::string name = std::string(to_string(ec.type)) + "_" +
                     to_string(ec.precon) + "_d" +
                     std::to_string(ec.halo_depth);
  if (ec.chrono) name += "_chrono";
  if (ec.fused) name += "_fused";
  if (ec.tile_rows != 0) name += "_b" + std::to_string(ec.tile_rows);
  return name;
}

SolverConfig cell_config(const EngineCell& ec) {
  SolverConfig cfg;
  cfg.type = ec.type;
  cfg.precon = ec.precon;
  cfg.halo_depth = ec.halo_depth;
  cfg.fuse_cg_reductions = ec.chrono;
  cfg.fuse_kernels = ec.fused;
  cfg.tile_rows = ec.tile_rows;
  cfg.eps = (ec.type == SolverType::kJacobi) ? 1e-5 : 1e-10;
  cfg.max_iters = (ec.type == SolverType::kJacobi) ? 100000 : 10000;
  cfg.eigen_cg_iters = 8;
  cfg.inner_steps = 6;
  return cfg;
}

class CrossDimensionCell : public ::testing::TestWithParam<EngineCell> {};

TEST_P(CrossDimensionCell, SlabSolveMatches2DExactly) {
  const EngineCell ec = GetParam();
  const SolverConfig cfg = cell_config(ec);
  const int halo = std::max(2, ec.halo_depth);
  auto d2 = make_test_problem(16, 2, halo, 6.0);
  auto d3 = make_slab_problem(16, 2, halo, 6.0);
  const SolveStats s2 = run_solver(*d2, cfg);
  const SolveStats s3 = run_solver(*d3, cfg);
  ASSERT_TRUE(s2.converged);
  ASSERT_TRUE(s3.converged);
  EXPECT_EQ(s3.outer_iters, s2.outer_iters);
  EXPECT_EQ(s3.inner_steps, s2.inner_steps);
  EXPECT_EQ(s3.spmv_applies, s2.spmv_applies);
  EXPECT_EQ(s3.eigen_cg_iters, s2.eigen_cg_iters);
  EXPECT_EQ(s3.initial_norm, s2.initial_norm);
  EXPECT_EQ(s3.final_norm, s2.final_norm);
  // The iterate itself: the 3-D plane equals the 2-D field bitwise.
  const Field<double> u2 = gather_field(*d2, FieldId::kU);
  const Field<double> u3 = gather_field(*d3, FieldId::kU);
  for (int k = 0; k < 16; ++k)
    for (int j = 0; j < 16; ++j)
      ASSERT_EQ(u2(j, k), u3(j, k, 0)) << "(" << j << "," << k << ")";
  // Same reductions; the slab's z phase moves no data, so byte counts
  // agree too (identical decomposition in the xy plane).
  EXPECT_EQ(d2->stats().reductions, d3->stats().reductions);
  EXPECT_EQ(d2->stats().message_bytes, d3->stats().message_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    SolverPreconEngine, CrossDimensionCell,
    ::testing::Values(
        EngineCell{SolverType::kJacobi, PreconType::kNone, false, false, 0},
        EngineCell{SolverType::kJacobi, PreconType::kNone, false, true, 0},
        EngineCell{SolverType::kJacobi, PreconType::kNone, false, true, 3},
        EngineCell{SolverType::kCG, PreconType::kNone, false, false, 0},
        EngineCell{SolverType::kCG, PreconType::kNone, false, true, 0},
        EngineCell{SolverType::kCG, PreconType::kNone, false, true, 3},
        EngineCell{SolverType::kCG, PreconType::kJacobiDiag, false, true, 3},
        EngineCell{SolverType::kCG, PreconType::kJacobiBlock, false, true,
                   3},
        EngineCell{SolverType::kCG, PreconType::kNone, true, false, 0},
        EngineCell{SolverType::kCG, PreconType::kJacobiDiag, true, true, 3},
        EngineCell{SolverType::kChebyshev, PreconType::kNone, false, false,
                   0},
        EngineCell{SolverType::kChebyshev, PreconType::kJacobiDiag, false,
                   true, 3},
        EngineCell{SolverType::kChebyshev, PreconType::kJacobiBlock, false,
                   true, 0},
        EngineCell{SolverType::kPPCG, PreconType::kNone, false, false, 0},
        EngineCell{SolverType::kPPCG, PreconType::kJacobiDiag, false, true,
                   3},
        EngineCell{SolverType::kPPCG, PreconType::kNone, false, true, 3, 3}),
    [](const auto& info) { return cell_name(info.param); });

// ---- 3-D fused/tiled vs unfused: bitwise ---------------------------------

class Engine3DEquivalence : public ::testing::TestWithParam<EngineCell> {};

TEST_P(Engine3DEquivalence, BitwiseIdenticalToUnfused3D) {
  const EngineCell ec = GetParam();
  SolverConfig cfg = cell_config(ec);
  const int halo = std::max(2, ec.halo_depth);
  auto a = make_test_problem_3d(10, 4, halo, 6.0);
  auto b = make_test_problem_3d(10, 4, halo, 6.0);
  SolverConfig unfused = cfg;
  unfused.fuse_kernels = false;
  unfused.tile_rows = 0;
  const SolveStats su = run_solver(*a, unfused);
  const SolveStats st = run_solver(*b, cfg);
  ASSERT_TRUE(su.converged);
  ASSERT_TRUE(st.converged);
  EXPECT_EQ(st.outer_iters, su.outer_iters);
  EXPECT_EQ(st.inner_steps, su.inner_steps);
  EXPECT_EQ(st.spmv_applies, su.spmv_applies);
  EXPECT_EQ(st.eigen_cg_iters, su.eigen_cg_iters);
  EXPECT_EQ(st.initial_norm, su.initial_norm);
  EXPECT_EQ(st.final_norm, su.final_norm);
  EXPECT_EQ(max_field_diff(*a, *b, FieldId::kU), 0.0);
  // The engines change the schedule, never the data motion.
  EXPECT_EQ(a->stats().exchange_calls, b->stats().exchange_calls);
  EXPECT_EQ(a->stats().messages, b->stats().messages);
  EXPECT_EQ(a->stats().message_bytes, b->stats().message_bytes);
  EXPECT_EQ(a->stats().reductions, b->stats().reductions);
}

INSTANTIATE_TEST_SUITE_P(
    AllSolversFusedAndTiled, Engine3DEquivalence,
    ::testing::Values(
        EngineCell{SolverType::kJacobi, PreconType::kNone, false, true, 0},
        EngineCell{SolverType::kJacobi, PreconType::kNone, false, true, 1},
        EngineCell{SolverType::kJacobi, PreconType::kNone, false, true, 4},
        EngineCell{SolverType::kCG, PreconType::kNone, false, true, 0},
        EngineCell{SolverType::kCG, PreconType::kNone, false, true, 1},
        EngineCell{SolverType::kCG, PreconType::kNone, false, true, 4},
        EngineCell{SolverType::kCG, PreconType::kNone, false, true, 1000},
        EngineCell{SolverType::kCG, PreconType::kJacobiDiag, false, true, 3},
        EngineCell{SolverType::kCG, PreconType::kJacobiBlock, false, true,
                   3},
        EngineCell{SolverType::kCG, PreconType::kNone, true, true, 4},
        EngineCell{SolverType::kCG, PreconType::kJacobiDiag, true, true, 2},
        EngineCell{SolverType::kCG, PreconType::kJacobiBlock, true, true, 5},
        EngineCell{SolverType::kChebyshev, PreconType::kNone, false, true,
                   3},
        EngineCell{SolverType::kChebyshev, PreconType::kJacobiDiag, false,
                   true, 2},
        EngineCell{SolverType::kChebyshev, PreconType::kJacobiBlock, false,
                   true, 0},
        EngineCell{SolverType::kPPCG, PreconType::kNone, false, true, 3},
        EngineCell{SolverType::kPPCG, PreconType::kJacobiDiag, false, true,
                   2},
        EngineCell{SolverType::kPPCG, PreconType::kNone, false, true, 3, 3},
        EngineCell{SolverType::kPPCG, PreconType::kJacobiDiag, false, true,
                   1, 2}),
    [](const auto& info) { return cell_name(info.param); });

}  // namespace
}  // namespace tealeaf
