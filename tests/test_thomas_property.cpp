#include <gtest/gtest.h>

#include <vector>

#include "comm/sim_comm.hpp"
#include "ops/kernels.hpp"
#include "precon/preconditioner.hpp"
#include "util/numeric.hpp"

namespace tealeaf {
namespace {

/// Dense Gaussian elimination on a tridiagonal system — the slow
/// reference the Thomas algorithm must match ("a much faster variation of
/// Gaussian elimination for tridiagonal systems", paper §IV-C1).
std::vector<double> dense_tridiag_solve(std::vector<double> sub,
                                        std::vector<double> diag,
                                        std::vector<double> sup,
                                        std::vector<double> rhs) {
  const std::size_t n = diag.size();
  for (std::size_t i = 1; i < n; ++i) {
    const double m = sub[i] / diag[i - 1];
    diag[i] -= m * sup[i - 1];
    rhs[i] -= m * rhs[i - 1];
  }
  std::vector<double> x(n);
  x[n - 1] = rhs[n - 1] / diag[n - 1];
  for (int i = static_cast<int>(n) - 2; i >= 0; --i) {
    x[i] = (rhs[i] - sup[i] * x[i + 1]) / diag[i];
  }
  return x;
}

/// Randomised-material property sweep: the block-Jacobi solve must equal
/// an independent dense solve of every strip's tridiagonal system.
class ThomasProperty : public ::testing::TestWithParam<int> {};

TEST_P(ThomasProperty, MatchesDenseEliminationPerStrip) {
  const int seed = GetParam();
  SplitMix64 rng(static_cast<std::uint64_t>(seed) * 7919u + 1u);
  // Vary the chunk height so truncated strips of every length 1..4 occur
  // across the sweep.
  const int ny = 5 + seed;  // 6..15
  const int nx = 7;
  SimCluster2D cl(GlobalMesh2D(nx, ny), 1, 2);
  Chunk2D& c = cl.chunk(0);
  c.density().fill(1.0);
  for (int k = -2; k < ny + 2; ++k)
    for (int j = -2; j < nx + 2; ++j)
      c.density()(j, k) = rng.next_double(0.1, 10.0);
  kernels::init_conduction(c, kernels::Coefficient::kConductivity,
                           rng.next_double(0.5, 20.0),
                           rng.next_double(0.5, 20.0));
  kernels::block_jacobi_init(c);

  auto& r = c.r();
  for (int k = 0; k < ny; ++k)
    for (int j = 0; j < nx; ++j) r(j, k) = rng.next_double(-3.0, 3.0);
  kernels::block_jacobi_solve(c, FieldId::kR, FieldId::kZ);

  for (int k0 = 0; k0 < ny; k0 += kJacBlockSize) {
    const int k1 = std::min(k0 + kJacBlockSize, ny);
    const int len = k1 - k0;
    for (int j = 0; j < nx; ++j) {
      std::vector<double> sub(len, 0.0), diag(len), sup(len, 0.0),
          rhs(len);
      for (int i = 0; i < len; ++i) {
        const int k = k0 + i;
        diag[i] = kernels::diag_at(c, j, k);
        if (i > 0) sub[i] = -c.ky()(j, k);
        if (i < len - 1) sup[i] = -c.ky()(j, k + 1);
        rhs[i] = r(j, k);
      }
      const auto x = dense_tridiag_solve(sub, diag, sup, rhs);
      for (int i = 0; i < len; ++i) {
        EXPECT_NEAR(c.z()(j, k0 + i), x[i],
                    1e-11 * std::max(1.0, std::fabs(x[i])))
            << "seed " << seed << " strip " << k0 << " column " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThomasProperty, ::testing::Range(1, 11));

TEST(ThomasEdge, ExtremeCoefficientContrast) {
  // 1000:1 density contrast (the crooked-pipe regime) must not break the
  // factorisation.
  SimCluster2D cl(GlobalMesh2D(4, 8), 1, 2);
  Chunk2D& c = cl.chunk(0);
  for (int k = -2; k < 10; ++k)
    for (int j = -2; j < 6; ++j)
      c.density()(j, k) = (k % 2 == 0) ? 100.0 : 0.1;
  kernels::init_conduction(c, kernels::Coefficient::kConductivity, 640.0,
                           640.0);
  kernels::block_jacobi_init(c);
  auto& r = c.r();
  r.fill(0.0);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 4; ++j) r(j, k) = 1.0;
  kernels::block_jacobi_solve(c, FieldId::kR, FieldId::kZ);
  for (int k = 0; k < 8; ++k) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_TRUE(std::isfinite(c.z()(j, k)));
      EXPECT_GT(c.z()(j, k), 0.0);  // M⁻¹ of a positive vector stays positive
    }
  }
}

TEST(ThomasEdge, IdentityLimitWhenCouplingVanishes) {
  // With ky = 0 (e.g. ry = 0) the strips decouple into scalars:
  // M = diag(A) and the block solve must equal the diagonal solve.
  SimCluster2D cl(GlobalMesh2D(5, 9), 1, 2);
  Chunk2D& c = cl.chunk(0);
  c.density().fill(2.0);
  kernels::init_conduction(c, kernels::Coefficient::kConductivity, 3.0,
                           0.0);
  kernels::block_jacobi_init(c);
  auto& r = c.r();
  SplitMix64 rng(5);
  for (int k = 0; k < 9; ++k)
    for (int j = 0; j < 5; ++j) r(j, k) = rng.next_double(-1.0, 1.0);
  kernels::block_jacobi_solve(c, FieldId::kR, FieldId::kZ);
  kernels::diag_solve(c, FieldId::kR, FieldId::kW, interior_bounds(c));
  for (int k = 0; k < 9; ++k)
    for (int j = 0; j < 5; ++j)
      EXPECT_NEAR(c.z()(j, k), c.w()(j, k), 1e-14);
}

}  // namespace
}  // namespace tealeaf
