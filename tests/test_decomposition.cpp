#include <gtest/gtest.h>

#include <set>

#include "mesh/decomposition.hpp"

namespace tealeaf {
namespace {

TEST(Decomposition, SingleRankOwnsEverything) {
  const GlobalMesh2D mesh(64, 32);
  const auto d = Decomposition2D::create(1, mesh);
  EXPECT_EQ(d.nranks(), 1);
  const ChunkExtent& e = d.extent(0);
  EXPECT_EQ(e.x0, 0);
  EXPECT_EQ(e.y0, 0);
  EXPECT_EQ(e.nx, 64);
  EXPECT_EQ(e.ny, 32);
  for (const Face f :
       {Face::kLeft, Face::kRight, Face::kBottom, Face::kTop}) {
    EXPECT_EQ(d.neighbor(0, f), -1);
  }
}

TEST(Decomposition, TilesPartitionTheMeshExactly) {
  const GlobalMesh2D mesh(37, 23);  // awkward remainders on purpose
  for (const int nranks : {2, 3, 4, 6, 8, 12, 16}) {
    const auto d = Decomposition2D::create(nranks, mesh);
    std::vector<std::vector<bool>> covered(
        37, std::vector<bool>(23, false));
    long long cells = 0;
    for (int r = 0; r < d.nranks(); ++r) {
      const ChunkExtent& e = d.extent(r);
      EXPECT_GT(e.nx, 0);
      EXPECT_GT(e.ny, 0);
      cells += static_cast<long long>(e.nx) * e.ny;
      for (int k = e.y0; k < e.y0 + e.ny; ++k) {
        for (int j = e.x0; j < e.x0 + e.nx; ++j) {
          EXPECT_FALSE(covered[j][k]) << "cell covered twice";
          covered[j][k] = true;
        }
      }
    }
    EXPECT_EQ(cells, mesh.cell_count());
  }
}

TEST(Decomposition, PrefersSquareChunks) {
  const GlobalMesh2D square(100, 100);
  const auto d = Decomposition2D::create(16, square);
  EXPECT_EQ(d.px(), 4);
  EXPECT_EQ(d.py(), 4);

  const GlobalMesh2D wide(400, 100);
  const auto dw = Decomposition2D::create(16, wide);
  EXPECT_EQ(dw.px(), 8);
  EXPECT_EQ(dw.py(), 2);
}

TEST(Decomposition, NeighborsAreMutual) {
  const GlobalMesh2D mesh(48, 48);
  const auto d = Decomposition2D::create(12, mesh);
  for (int r = 0; r < d.nranks(); ++r) {
    for (const Face f :
         {Face::kLeft, Face::kRight, Face::kBottom, Face::kTop}) {
      const int nb = d.neighbor(r, f);
      if (nb < 0) continue;
      EXPECT_EQ(d.neighbor(nb, opposite(f)), r);
    }
  }
}

TEST(Decomposition, ChunkSizesDifferByAtMostOne) {
  const GlobalMesh2D mesh(101, 67);
  const auto d = Decomposition2D::create(12, mesh);
  std::set<int> nxs, nys;
  for (int r = 0; r < d.nranks(); ++r) {
    nxs.insert(d.extent(r).nx);
    nys.insert(d.extent(r).ny);
  }
  EXPECT_LE(*nxs.rbegin() - *nxs.begin(), 1);
  EXPECT_LE(*nys.rbegin() - *nys.begin(), 1);
  EXPECT_EQ(d.max_chunk_nx(), *nxs.rbegin());
  EXPECT_EQ(d.max_chunk_ny(), *nys.rbegin());
}

TEST(Decomposition, PrimeRankCountsFallBackToStrips) {
  const GlobalMesh2D mesh(70, 70);
  const auto d = Decomposition2D::create(7, mesh);
  EXPECT_EQ(d.nranks(), 7);
  EXPECT_TRUE((d.px() == 7 && d.py() == 1) || (d.px() == 1 && d.py() == 7));
}

TEST(Decomposition, RejectsImpossibleSplits) {
  const GlobalMesh2D tiny(2, 2);
  EXPECT_THROW(Decomposition2D::create(64, tiny), TeaError);
  EXPECT_THROW(Decomposition2D::create(0, tiny), TeaError);
}

TEST(Decomposition, CoordsRoundTrip) {
  const GlobalMesh2D mesh(64, 64);
  const auto d = Decomposition2D::create(8, mesh);
  for (int r = 0; r < d.nranks(); ++r) {
    EXPECT_EQ(d.rank_at(d.coord_x(r), d.coord_y(r)), r);
  }
}

}  // namespace
}  // namespace tealeaf
