#include <gtest/gtest.h>

#include <tuple>

#include "solvers/cg.hpp"
#include "solvers/solver.hpp"
#include "test_helpers.hpp"

namespace tealeaf {
namespace {

using testing::make_test_problem;
using testing::max_field_diff;
using testing::relative_residual;

// ---------------------------------------------------------------------------
// Property sweep 1: every (solver, preconditioner) combination that the
// design space allows must converge to the same solution on the same
// problem, for any decomposition.
// ---------------------------------------------------------------------------

struct ComboCase {
  SolverType type;
  PreconType precon;
  int halo_depth;
  int nranks;
};

class SolverCombo : public ::testing::TestWithParam<ComboCase> {};

TEST_P(SolverCombo, ConvergesToTheCommonSolution) {
  const ComboCase cc = GetParam();
  SolverConfig cfg;
  cfg.type = cc.type;
  cfg.precon = cc.precon;
  cfg.halo_depth = cc.halo_depth;
  cfg.eps = 1e-11;
  cfg.max_iters = 200000;
  cfg.eigen_cg_iters = 12;
  cfg.inner_steps = 8;

  auto ref = make_test_problem(28, 1, 2, 8.0);
  SolverConfig ref_cfg;
  ref_cfg.type = SolverType::kCG;
  ref_cfg.eps = 1e-13;
  ref_cfg.max_iters = 100000;
  ASSERT_TRUE(run_solver(*ref, ref_cfg).converged);

  auto cl = make_test_problem(28, cc.nranks, std::max(2, cc.halo_depth), 8.0);
  const SolveStats st = run_solver(*cl, cfg);
  EXPECT_TRUE(st.converged);
  const double tol = (cc.type == SolverType::kJacobi) ? 1e-4 : 1e-6;
  EXPECT_LT(max_field_diff(*ref, *cl, FieldId::kU), tol);
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, SolverCombo,
    ::testing::Values(
        ComboCase{SolverType::kCG, PreconType::kNone, 1, 3},
        ComboCase{SolverType::kCG, PreconType::kJacobiDiag, 1, 4},
        ComboCase{SolverType::kCG, PreconType::kJacobiBlock, 1, 2},
        ComboCase{SolverType::kChebyshev, PreconType::kNone, 1, 4},
        ComboCase{SolverType::kChebyshev, PreconType::kJacobiDiag, 1, 2},
        ComboCase{SolverType::kChebyshev, PreconType::kJacobiBlock, 1, 1},
        ComboCase{SolverType::kPPCG, PreconType::kNone, 1, 4},
        ComboCase{SolverType::kPPCG, PreconType::kNone, 4, 4},
        ComboCase{SolverType::kPPCG, PreconType::kJacobiDiag, 2, 3},
        ComboCase{SolverType::kPPCG, PreconType::kJacobiBlock, 1, 2}),
    [](const auto& info) {
      const ComboCase& cc = info.param;
      return std::string(to_string(cc.type)) + "_" + to_string(cc.precon) +
             "_d" + std::to_string(cc.halo_depth) + "_r" +
             std::to_string(cc.nranks);
    });

// ---------------------------------------------------------------------------
// Property sweep 2: SPD invariants of the operator across random
// materials — symmetry, positive definiteness and unit row sums must hold
// for any coefficient field.
// ---------------------------------------------------------------------------

class OperatorInvariants : public ::testing::TestWithParam<int> {};

TEST_P(OperatorInvariants, SymmetricPositiveConservative) {
  const int seed = GetParam();
  SimCluster2D cl(GlobalMesh2D(14, 17), 1, 2);
  Chunk2D& c = cl.chunk(0);
  SplitMix64 rng(static_cast<std::uint64_t>(seed));
  c.density().fill(1.0);
  for (int k = -2; k < c.ny() + 2; ++k)
    for (int j = -2; j < c.nx() + 2; ++j)
      c.density()(j, k) = rng.next_double(0.05, 20.0);
  kernels::init_conduction(c, kernels::Coefficient::kConductivity,
                           rng.next_double(0.1, 50.0),
                           rng.next_double(0.1, 50.0));

  auto& x = c.p();
  auto& y = c.z();
  x.fill(0.0);
  y.fill(0.0);
  for (int k = 0; k < c.ny(); ++k) {
    for (int j = 0; j < c.nx(); ++j) {
      x(j, k) = rng.next_double(-1.0, 1.0);
      y(j, k) = rng.next_double(-1.0, 1.0);
    }
  }
  // Symmetry: ⟨y, Ax⟩ = ⟨x, Ay⟩.
  kernels::smvp(c, FieldId::kP, FieldId::kW, interior_bounds(c));
  const double y_ax = kernels::dot(c, FieldId::kZ, FieldId::kW);
  const double x_ax = kernels::dot(c, FieldId::kP, FieldId::kW);
  kernels::smvp(c, FieldId::kZ, FieldId::kW, interior_bounds(c));
  const double x_ay = kernels::dot(c, FieldId::kP, FieldId::kW);
  EXPECT_NEAR(y_ax, x_ay, 1e-10 * std::max(1.0, std::fabs(y_ax)));
  // Positive definiteness: ⟨x, Ax⟩ > 0.
  EXPECT_GT(x_ax, 0.0);
  // Conservation: A·1 = 1.
  c.p().fill(1.0);
  kernels::smvp(c, FieldId::kP, FieldId::kW, interior_bounds(c));
  for (int k = 0; k < c.ny(); ++k)
    for (int j = 0; j < c.nx(); ++j)
      EXPECT_NEAR(c.w()(j, k), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorInvariants,
                         ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Property sweep 3: CG residual-norm metric decreases monotonically in
// the ⟨r, M⁻¹r⟩ measure used for convergence control.
// ---------------------------------------------------------------------------

class CGMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CGMonotonicity, MetricContractsOverall) {
  auto cl = make_test_problem(24, GetParam(), 2, 8.0);
  double rro = cg_setup(*cl, PreconType::kNone);
  const double initial = rro;
  double lowest = rro;
  int increases = 0;
  for (int i = 0; i < 60; ++i) {
    rro = cg_iteration(*cl, PreconType::kNone, rro, nullptr);
    if (rro > lowest) ++increases;
    lowest = std::min(lowest, rro);
  }
  // CG's ‖r‖₂ is not strictly monotone, but it must trend firmly down.
  EXPECT_LT(rro, 1e-4 * initial);
  EXPECT_LT(increases, 30);
}

INSTANTIATE_TEST_SUITE_P(Ranks, CGMonotonicity, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace tealeaf
