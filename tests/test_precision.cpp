// The mixed-precision execution layer's contract (eleventh design-space
// axis):
//   * tl_precision = double is BITWISE identical to the historical fp64
//     path — allocating (but not activating) the fp32 bank must not
//     perturb a single ULP of any solver, engine, geometry or operator
//     representation;
//   * tl_precision = mixed converges to the SAME tl_eps as fp64, through
//     an fp64-guarded iterative-refinement loop around fp32 inner solves,
//     and records how many refinement passes it took;
//   * tl_precision = single is honest all-fp32: deterministic run to run,
//     identical across operator representations, close to — but not
//     pretending to be — the fp64 answer;
//   * the session layer keys on precision so fp32-banked sessions (and
//     their eigenvalue memos) never serve a request of another precision.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>

#include "api/solve_api.hpp"
#include "driver/deck.hpp"
#include "driver/decks.hpp"
#include "solvers/solver.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace tealeaf {
namespace {

using testing::install_operator;
using testing::make_test_problem;
using testing::make_test_problem_3d;
using testing::max_field_diff;

// ---- fp64 path: bitwise unperturbed by the precision layer ---------------

enum class Engine { kUnfused, kFused, kTiled, kPipelined };

const char* engine_name(Engine e) {
  switch (e) {
    case Engine::kUnfused: return "unfused";
    case Engine::kFused: return "fused";
    case Engine::kTiled: return "tiled";
    case Engine::kPipelined: return "pipelined";
  }
  return "?";
}

using Fp64Case = std::tuple<SolverType, Engine, int, OperatorKind>;

class Fp64BitwiseIdentity : public ::testing::TestWithParam<Fp64Case> {};

TEST_P(Fp64BitwiseIdentity, Fp32BankDoesNotPerturbDoubleSolves) {
  const auto [type, engine, dims, op] = GetParam();
  SolverConfig cfg;
  cfg.type = type;
  cfg.op = op;
  cfg.eps = (type == SolverType::kJacobi) ? 1e-4 : 1e-8;
  cfg.max_iters = (type == SolverType::kJacobi) ? 60000 : 10000;
  cfg.eigen_cg_iters = 15;
  cfg.inner_steps = 8;
  switch (engine) {
    case Engine::kUnfused:
      break;
    case Engine::kFused:
      cfg.fuse_kernels = true;
      break;
    case Engine::kTiled:
      cfg.fuse_kernels = true;
      cfg.tile_rows = 6;
      break;
    case Engine::kPipelined:
      cfg.fuse_kernels = true;
      cfg.tile_rows = 4;
      cfg.pipeline = true;
      break;
  }

  const auto make = [&] {
    return dims == 3 ? make_test_problem_3d(10, 2, 2)
                     : make_test_problem(20, 2, 2);
  };
  auto ref = make();
  install_operator(*ref, op);
  const SolveStats ss = run_solver(*ref, cfg);
  ASSERT_TRUE(ss.converged) << engine_name(engine);

  // Same problem, but every chunk carries the (inactive) fp32 field bank
  // and the config names its precision explicitly.  kDouble never touches
  // the bank, so nothing may differ — not even ULPs.
  auto cl = make();
  install_operator(*cl, op);
  cl->for_each_chunk([](int, Chunk& c) { c.enable_fp32(); });
  SolverConfig dcfg = cfg;
  dcfg.precision = Precision::kDouble;
  const SolveStats sd = run_solver(*cl, dcfg);
  ASSERT_TRUE(sd.converged) << engine_name(engine);

  EXPECT_EQ(sd.outer_iters, ss.outer_iters) << engine_name(engine);
  EXPECT_EQ(sd.inner_steps, ss.inner_steps) << engine_name(engine);
  EXPECT_EQ(sd.eigen_cg_iters, ss.eigen_cg_iters) << engine_name(engine);
  EXPECT_EQ(sd.spmv_applies, ss.spmv_applies) << engine_name(engine);
  EXPECT_EQ(sd.initial_norm, ss.initial_norm) << engine_name(engine);
  EXPECT_EQ(sd.final_norm, ss.final_norm) << engine_name(engine);
  EXPECT_EQ(sd.refine_steps, 0);
  EXPECT_EQ(max_field_diff(*ref, *cl, FieldId::kU), 0.0)
      << engine_name(engine);
}

INSTANTIATE_TEST_SUITE_P(
    AllSolversEnginesGeometriesOperators, Fp64BitwiseIdentity,
    ::testing::Combine(
        ::testing::Values(SolverType::kJacobi, SolverType::kCG,
                          SolverType::kChebyshev, SolverType::kPPCG),
        ::testing::Values(Engine::kUnfused, Engine::kFused, Engine::kTiled,
                          Engine::kPipelined),
        ::testing::Values(2, 3),
        ::testing::Values(OperatorKind::kStencil, OperatorKind::kCsr,
                          OperatorKind::kSellCSigma)));

// ---- mixed: fp64-guarded refinement reaches the fp64 tolerance -----------

InputDeck load_deck(const std::string& name) {
  const std::string path = std::string(TEALEAF_DECKS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  return InputDeck::parse(in);
}

InputDeck coarsen(InputDeck deck, int n, int steps) {
  deck.x_cells = n;
  deck.y_cells = n;
  deck.end_time = 0.0;
  deck.end_step = steps;
  deck.solver.eps = 1e-8;
  return deck;
}

TEST(MixedPrecision, ConvergesToFp64ToleranceOnAllBenchmarkDecks) {
  for (const char* name :
       {"tea_bm_crooked_pipe.in", "tea_bm_short.in",
        "tea_bm_block_jacobi.in", "tea_bm_fused_cg.in"}) {
    const InputDeck deck = coarsen(load_deck(name), 40, 1);
    SolveSession session(deck, 2);
    SolverConfig cfg = deck.solver;
    cfg.precision = Precision::kMixed;
    const SolveStats st = session.solve(cfg);
    EXPECT_TRUE(st.converged) << name;
    EXPECT_FALSE(st.breakdown) << name;
    // Converged means the fp64 TRUE residual met the deck's own tl_eps —
    // the same target the fp64 path solves to, not a looser fp32 one.
    EXPECT_LE(st.final_norm, cfg.eps * st.initial_norm) << name;
    EXPECT_GE(st.refine_steps, 0) << name;
    EXPECT_LE(st.refine_steps, 12) << name;
  }
}

TEST(MixedPrecision, TightToleranceForcesRefinementPasses) {
  // tl_eps = 1e-10 sits far below the fp32 inner floor (1e-5), so the
  // outer loop must take at least one correction re-solve to get there.
  auto cl = make_test_problem(24, 2, 2);
  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  cfg.eps = 1e-10;
  cfg.max_iters = 10000;
  cfg.precision = Precision::kMixed;
  const SolveStats st = run_solver(*cl, cfg);
  ASSERT_TRUE(st.converged);
  EXPECT_GE(st.refine_steps, 1);
  EXPECT_LE(st.final_norm, cfg.eps * st.initial_norm);
  // The aggregated stats carry the inner solves' work.
  EXPECT_GT(st.outer_iters, 0);
  EXPECT_GT(st.spmv_applies, 0);
  // And the fp64 guard really left an fp64 solution behind: recomputing
  // the residual from scratch in fp64 agrees with the claim.
  EXPECT_LT(testing::relative_residual(*cl), 1e-9);
}

// ---- single: honest, deterministic all-fp32 ------------------------------

TEST(SinglePrecision, DeterministicAcrossRuns) {
  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  cfg.eps = 1e-4;
  cfg.max_iters = 10000;
  cfg.precision = Precision::kSingle;
  auto a = make_test_problem(24, 2, 2);
  auto b = make_test_problem(24, 2, 2);
  const SolveStats sa = run_solver(*a, cfg);
  const SolveStats sb = run_solver(*b, cfg);
  ASSERT_TRUE(sa.converged);
  EXPECT_EQ(sb.outer_iters, sa.outer_iters);
  EXPECT_EQ(sb.initial_norm, sa.initial_norm);
  EXPECT_EQ(sb.final_norm, sa.final_norm);
  EXPECT_EQ(max_field_diff(*a, *b, FieldId::kU), 0.0);
}

TEST(SinglePrecision, AssembledOperatorsMatchStencilBitwise) {
  // The fp32 CSR/SELL values are assembled from the fp32 coefficient
  // fields in float arithmetic, in the stencil's own entry order — so the
  // fp32 representations must agree exactly, just like the fp64 ones do.
  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  cfg.eps = 1e-4;
  cfg.max_iters = 10000;
  cfg.precision = Precision::kSingle;
  auto ref = make_test_problem(24, 2, 2);
  const SolveStats ss = run_solver(*ref, cfg);
  ASSERT_TRUE(ss.converged);
  for (const OperatorKind op :
       {OperatorKind::kCsr, OperatorKind::kSellCSigma}) {
    auto cl = make_test_problem(24, 2, 2);
    install_operator(*cl, op);
    SolverConfig acfg = cfg;
    acfg.op = op;
    const SolveStats sa = run_solver(*cl, acfg);
    ASSERT_TRUE(sa.converged) << to_string(op);
    EXPECT_EQ(sa.outer_iters, ss.outer_iters) << to_string(op);
    EXPECT_EQ(sa.initial_norm, ss.initial_norm) << to_string(op);
    EXPECT_EQ(sa.final_norm, ss.final_norm) << to_string(op);
    EXPECT_EQ(max_field_diff(*ref, *cl, FieldId::kU), 0.0) << to_string(op);
  }
}

TEST(SinglePrecision, TracksButDoesNotEqualTheFp64Solution) {
  SolverConfig cfg;
  cfg.type = SolverType::kCG;
  cfg.eps = 1e-4;
  cfg.max_iters = 10000;
  auto f64 = make_test_problem(24, 2, 2);
  ASSERT_TRUE(run_solver(*f64, cfg).converged);
  auto f32 = make_test_problem(24, 2, 2);
  SolverConfig scfg = cfg;
  scfg.precision = Precision::kSingle;
  ASSERT_TRUE(run_solver(*f32, scfg).converged);
  const double diff = max_field_diff(*f64, *f32, FieldId::kU);
  EXPECT_GT(diff, 0.0);    // honest fp32 arithmetic, not a relabelled fp64
  EXPECT_LT(diff, 1e-2);   // but the same physics to fp32-ish accuracy
}

// ---- session layer: precision is part of the problem shape ---------------

TEST(PrecisionShape, KeySuffixesDistinguishPrecisions) {
  InputDeck deck = decks::hot_block(16);
  const std::string base = ProblemShape::of(deck, 2, 2).key();
  EXPECT_EQ(base.find("/f32"), std::string::npos);
  EXPECT_EQ(base.find("/mixed"), std::string::npos);
  deck.solver.precision = Precision::kSingle;
  const std::string f32 = ProblemShape::of(deck, 2, 2).key();
  deck.solver.precision = Precision::kMixed;
  const std::string mixed = ProblemShape::of(deck, 2, 2).key();
  EXPECT_EQ(f32, base + "/f32");
  EXPECT_EQ(mixed, base + "/mixed");
}

TEST(PrecisionShape, SessionCacheNeverSharesAcrossPrecisions) {
  SessionCache cache(8);
  InputDeck deck = decks::hot_block(16);
  const auto dbl = cache.acquire(deck, 2, 2, 1);
  deck.solver.precision = Precision::kMixed;
  const auto mix = cache.acquire(deck, 2, 2, 1);
  ASSERT_EQ(dbl.size(), 1u);
  ASSERT_EQ(mix.size(), 1u);
  // Same geometry, different precision: two distinct sessions (a cache
  // hit here would hand an fp64 session — and its eigen memo — to a
  // mixed request).
  EXPECT_NE(dbl[0], mix[0]);
  EXPECT_EQ(cache.shapes(), 2u);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(PrecisionShape, MatrixFileOperatorRejectsReducedPrecision) {
  InputDeck deck = decks::hot_block(16);
  deck.solver.op = OperatorKind::kCsr;
  deck.matrix_file = "system.mtx";
  SolveSession session(deck, 1);
  SolverConfig cfg = deck.solver;
  cfg.precision = Precision::kMixed;
  // The guard fires before any file I/O: a loaded operator has no stencil
  // coefficients to re-assemble in fp32.
  EXPECT_THROW(session.solve(cfg), TeaError);
}

}  // namespace
}  // namespace tealeaf
