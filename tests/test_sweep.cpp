#include <gtest/gtest.h>

#include "driver/decks.hpp"
#include "driver/sweep.hpp"
#include "model/scaling.hpp"

namespace tealeaf {
namespace {

SweepSpec small_spec() {
  SweepSpec spec;
  spec.solvers = {"cg", "ppcg"};
  spec.precons = {PreconType::kNone, PreconType::kJacobiDiag};
  spec.halo_depths = {1, 4};
  spec.mesh_sizes = {16, 24};
  spec.ranks = 2;
  return spec;
}

TEST(SweepEnumeration, FullCrossProductInDeclaredOrder) {
  const SweepSpec spec = small_spec();
  const std::vector<SweepCase> cases = enumerate_cases(spec, 48);
  ASSERT_EQ(cases.size(), spec.num_cases());
  ASSERT_EQ(cases.size(), 2u * 2u * 2u * 2u * 1u);

  // Axis nesting: solver outermost, threads innermost.
  EXPECT_EQ(cases[0].label(), "cg/none/d1/n16/t0");
  EXPECT_EQ(cases[1].label(), "cg/none/d1/n24/t0");
  EXPECT_EQ(cases[2].label(), "cg/none/d4/n16/t0");
  EXPECT_EQ(cases[4].label(), "cg/jac_diag/d1/n16/t0");
  EXPECT_EQ(cases[8].label(), "ppcg/none/d1/n16/t0");
  EXPECT_EQ(cases.back().label(), "ppcg/jac_diag/d4/n24/t0");

  // Enumeration is deterministic: a second call yields identical cells.
  const std::vector<SweepCase> again = enumerate_cases(spec, 48);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(cases[i].label(), again[i].label());
  }
}

TEST(SweepEnumeration, EmptyMeshAxisUsesBaseMesh) {
  SweepSpec spec;
  spec.solvers = {"jacobi"};
  const std::vector<SweepCase> cases = enumerate_cases(spec, 40);
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(cases[0].mesh_n, 40);
}

TEST(SweepEnumeration, RejectsBadAxes) {
  SweepSpec spec;
  spec.solvers = {"warp-drive"};
  EXPECT_THROW(enumerate_cases(spec, 32), TeaError);
  spec = small_spec();
  spec.halo_depths = {0};
  EXPECT_THROW(spec.validate(), TeaError);
  spec = small_spec();
  spec.ranks = 0;
  EXPECT_THROW(spec.validate(), TeaError);
}

TEST(SweepDeck, ParsesAndRoundTripsSweepSection) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\n"
      "x_cells=32\ny_cells=32\nend_step=1\n"
      "sweep_solvers=cg,ppcg,mg-pcg\n"
      "sweep_precons=none,jac_diag\n"
      "sweep_halo_depths=1,4,8\n"
      "sweep_mesh_sizes=16,32\n"
      "sweep_threads=0,2\n"
      "sweep_ranks=2\n"
      "state 1 density=1.0 energy=1.0\n"
      "*endtea\n");
  ASSERT_TRUE(deck.sweep.requested());
  EXPECT_EQ(deck.sweep.solvers,
            (std::vector<std::string>{"cg", "ppcg", "mg-pcg"}));
  EXPECT_EQ(deck.sweep.precons,
            (std::vector<PreconType>{PreconType::kNone,
                                     PreconType::kJacobiDiag}));
  EXPECT_EQ(deck.sweep.halo_depths, (std::vector<int>{1, 4, 8}));
  EXPECT_EQ(deck.sweep.mesh_sizes, (std::vector<int>{16, 32}));
  EXPECT_EQ(deck.sweep.thread_counts, (std::vector<int>{0, 2}));
  EXPECT_EQ(deck.sweep.ranks, 2);
  EXPECT_EQ(deck.sweep.num_cases(), 3u * 2u * 3u * 2u * 2u);

  const InputDeck back = InputDeck::parse_string(deck.to_string());
  EXPECT_EQ(back.sweep.solvers, deck.sweep.solvers);
  EXPECT_EQ(back.sweep.precons, deck.sweep.precons);
  EXPECT_EQ(back.sweep.halo_depths, deck.sweep.halo_depths);
  EXPECT_EQ(back.sweep.mesh_sizes, deck.sweep.mesh_sizes);
  EXPECT_EQ(back.sweep.thread_counts, deck.sweep.thread_counts);
  EXPECT_EQ(back.sweep.ranks, deck.sweep.ranks);
}

TEST(SweepDeck, FusedAxisAndEngineToggleRoundTrip) {
  const InputDeck deck = InputDeck::parse_string(
      "*tea\n"
      "x_cells=16\ny_cells=16\nend_step=1\n"
      "tl_fuse_kernels\n"
      "sweep_solvers=cg\n"
      "sweep_fused=0,1\n"
      "state 1 density=1.0 energy=1.0\n"
      "*endtea\n");
  EXPECT_TRUE(deck.solver.fuse_kernels);
  EXPECT_EQ(deck.sweep.fused, (std::vector<int>{0, 1}));
  const InputDeck back = InputDeck::parse_string(deck.to_string());
  EXPECT_TRUE(back.solver.fuse_kernels);
  EXPECT_EQ(back.sweep.fused, deck.sweep.fused);
}

TEST(SweepDeck, NonSweepDecksStayNonSweep) {
  const InputDeck deck = decks::hot_block(16, 1);
  EXPECT_FALSE(deck.sweep.requested());
  const InputDeck back = InputDeck::parse_string(deck.to_string());
  EXPECT_FALSE(back.sweep.requested());
}

TEST(SweepDeck, RejectsUnknownSweepValues) {
  EXPECT_THROW(InputDeck::parse_string(
                   "*tea\nx_cells=8\ny_cells=8\nend_step=1\n"
                   "sweep_solvers=cg\nsweep_precons=ilu\n"
                   "state 1 density=1 energy=1\n*endtea\n"),
               TeaError);
}

/// Shared fixture: one executed 2-solver × 2-mesh sweep (plus one invalid
/// combination) reused by the end-to-end and round-trip tests.
class SweepRun : public ::testing::Test {
 protected:
  static const SweepReport& report() {
    static const SweepReport rep = [] {
      InputDeck base = decks::hot_block(16, 1);
      base.solver.eps = 1e-8;
      SweepSpec spec;
      spec.solvers = {"cg", "ppcg"};
      spec.precons = {PreconType::kNone, PreconType::kJacobiBlock};
      spec.halo_depths = {1, 4};
      spec.mesh_sizes = {16, 24};
      spec.ranks = 2;
      return run_sweep(base, spec);
    }();
    return rep;
  }
};

TEST_F(SweepRun, EndToEndAllValidCellsConverge) {
  const SweepReport& rep = report();
  ASSERT_EQ(rep.cells.size(), 16u);
  EXPECT_EQ(rep.ranks, 2);
  EXPECT_EQ(rep.steps, 1);

  int converged = 0, skipped = 0;
  for (const SweepOutcome& c : rep.cells) {
    if (c.skipped) {
      ++skipped;
      EXPECT_FALSE(c.skip_reason.empty());
      continue;
    }
    EXPECT_TRUE(c.converged) << c.config.label();
    ++converged;
    EXPECT_GT(c.iterations, 0) << c.config.label();
    EXPECT_GT(c.spmv, 0) << c.config.label();
    EXPECT_GT(c.reductions, 0) << c.config.label();
    EXPECT_GT(c.solve_seconds, 0.0) << c.config.label();
    EXPECT_GT(c.comm_seconds, 0.0) << c.config.label();
    EXPECT_LT(c.final_norm, 1e-8 * 1e3) << c.config.label();
  }
  // Skipped: cg × d4 (2 precons × 2 meshes) and ppcg × jac_block × d4
  // (2 meshes) — the matrix-powers contract of SolverConfig::validate.
  EXPECT_EQ(skipped, 6);
  EXPECT_EQ(converged, 10);

  // Ranking covers exactly the converged cells, fastest first.
  const std::vector<int> order = rep.ranking();
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(rep.cells[order[i - 1]].solve_seconds,
              rep.cells[order[i]].solve_seconds);
  }
  EXPECT_EQ(rep.best(), order.front());

  // Speedups: exactly one cell at 1.0 (the best), the rest in (0, 1].
  const std::vector<double> speedup = rep.speedups();
  EXPECT_DOUBLE_EQ(speedup[rep.best()], 1.0);
  for (std::size_t i = 0; i < speedup.size(); ++i) {
    if (rep.cells[i].skipped) {
      EXPECT_DOUBLE_EQ(speedup[i], 0.0);
    } else {
      EXPECT_GT(speedup[i], 0.0);
      EXPECT_LE(speedup[i], 1.0);
    }
  }
}

TEST(SweepDesignQuestions, PPCGCutsReductionsAndDepthCutsExchanges) {
  // The design questions the sweep exists to answer (paper §II): PPCG
  // trades global reductions for inner Chebyshev steps, and matrix-powers
  // halo depth trades exchange rounds for deeper halos.  Use a problem
  // hard enough that the iteration counts are not prestep-dominated.
  InputDeck base = decks::layered_material(32, 1);
  SweepSpec spec;
  spec.solvers = {"cg", "ppcg"};
  spec.halo_depths = {1, 4};
  spec.ranks = 2;
  const SweepReport rep = run_sweep(base, spec);

  const auto cell = [&](const std::string& label) -> const SweepOutcome& {
    for (const SweepOutcome& c : rep.cells) {
      if (c.config.label() == label) return c;
    }
    throw TeaError("no cell " + label);
  };
  const SweepOutcome& cg = cell("cg/none/d1/n32/t0");
  const SweepOutcome& ppcg1 = cell("ppcg/none/d1/n32/t0");
  const SweepOutcome& ppcg4 = cell("ppcg/none/d4/n32/t0");
  ASSERT_TRUE(cg.converged && ppcg1.converged && ppcg4.converged);
  EXPECT_LT(ppcg1.reductions, cg.reductions);
  EXPECT_LT(ppcg4.exchanges, ppcg1.exchanges);
}

TEST_F(SweepRun, CsvRoundTrips) {
  const SweepReport& rep = report();
  const std::vector<std::string> lines = rep.to_csv_lines();
  ASSERT_EQ(lines.size(), rep.cells.size() + 1);  // header + one per cell

  const SweepReport back = SweepReport::from_csv_lines(lines);
  ASSERT_EQ(back.cells.size(), rep.cells.size());
  EXPECT_EQ(back.ranks, rep.ranks);
  EXPECT_EQ(back.steps, rep.steps);
  for (std::size_t i = 0; i < rep.cells.size(); ++i) {
    const SweepOutcome& a = rep.cells[i];
    const SweepOutcome& b = back.cells[i];
    EXPECT_EQ(a.config.label(), b.config.label());
    EXPECT_EQ(a.skipped, b.skipped);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.inner_steps, b.inner_steps);
    EXPECT_EQ(a.spmv, b.spmv);
    EXPECT_EQ(a.reductions, b.reductions);
    EXPECT_EQ(a.exchanges, b.exchanges);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.message_bytes, b.message_bytes);
    EXPECT_DOUBLE_EQ(a.final_norm, b.final_norm);
    EXPECT_DOUBLE_EQ(a.solve_seconds, b.solve_seconds);
    EXPECT_DOUBLE_EQ(a.comm_seconds, b.comm_seconds);
  }
  // Derived views survive the trip bit-for-bit.
  EXPECT_EQ(back.ranking(), rep.ranking());
  EXPECT_EQ(back.best(), rep.best());

  // Corrupt cells are rejected with the library's error type, not a raw
  // std::invalid_argument.
  std::vector<std::string> corrupt = lines;
  corrupt[1].replace(corrupt[1].find(",1,"), 3, ",x,");
  EXPECT_THROW(SweepReport::from_csv_lines(corrupt), TeaError);
}

TEST_F(SweepRun, JsonRoundTrips) {
  const SweepReport& rep = report();
  const std::string text = rep.to_json().dump(2);
  const SweepReport back = SweepReport::from_json_string(text);
  ASSERT_EQ(back.cells.size(), rep.cells.size());
  EXPECT_EQ(back.ranks, rep.ranks);
  EXPECT_EQ(back.steps, rep.steps);
  for (std::size_t i = 0; i < rep.cells.size(); ++i) {
    const SweepOutcome& a = rep.cells[i];
    const SweepOutcome& b = back.cells[i];
    EXPECT_EQ(a.config.label(), b.config.label());
    EXPECT_EQ(a.skipped, b.skipped);
    EXPECT_EQ(a.skip_reason, b.skip_reason);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.message_bytes, b.message_bytes);
    EXPECT_DOUBLE_EQ(a.final_norm, b.final_norm);
    EXPECT_DOUBLE_EQ(a.solve_seconds, b.solve_seconds);
    EXPECT_DOUBLE_EQ(a.comm_seconds, b.comm_seconds);
  }
  EXPECT_EQ(back.ranking(), rep.ranking());

  // The document also carries the ranking and best-cell identification
  // for consumers that read the JSON directly.
  const io::JsonValue doc = io::JsonValue::parse(text);
  ASSERT_TRUE(doc.contains("ranking"));
  EXPECT_EQ(static_cast<int>(doc.at("best").as_number()), rep.best());
  EXPECT_EQ(doc.at("best_label").as_string(),
            rep.cells[rep.best()].config.label());
}

TEST(SweepMgPcg, RunsAsFifthSolverAxis) {
  InputDeck base = decks::hot_block(16, 1);
  base.solver.eps = 1e-8;
  SweepSpec spec;
  spec.solvers = {"cg", "mg-pcg"};
  spec.ranks = 2;
  const SweepReport rep = run_sweep(base, spec);
  ASSERT_EQ(rep.cells.size(), 2u);
  for (const SweepOutcome& c : rep.cells) {
    EXPECT_FALSE(c.skipped) << c.config.label();
    EXPECT_TRUE(c.converged) << c.config.label();
  }
  // MG-PCG converges in far fewer (mesh-independent) iterations.
  EXPECT_LT(rep.cells[1].iterations, rep.cells[0].iterations);
}

TEST(SweepDeckDriven, DeckSweepSectionDrivesRun) {
  InputDeck base = decks::hot_block(16, 1);
  base.solver.eps = 1e-8;
  base.sweep.solvers = {"cg", "jacobi"};
  base.sweep.mesh_sizes = {12, 16};
  base.sweep.ranks = 2;
  const SweepReport rep = run_sweep(base);
  ASSERT_EQ(rep.cells.size(), 4u);
  for (const SweepOutcome& c : rep.cells) {
    EXPECT_TRUE(c.converged) << c.config.label();
  }
}

TEST(SweepFusedAxis, EnumeratesAsSixthInnermostAxis) {
  SweepSpec spec;
  spec.solvers = {"cg"};
  spec.fused = {0, 1};
  const std::vector<SweepCase> cases = enumerate_cases(spec, 16);
  ASSERT_EQ(cases.size(), 2u);
  ASSERT_EQ(spec.num_cases(), 2u);
  EXPECT_EQ(cases[0].label(), "cg/none/d1/n16/t0");
  EXPECT_EQ(cases[1].label(), "cg/none/d1/n16/t0/fused");
  spec.fused = {2};
  EXPECT_THROW(spec.validate(), TeaError);
}

TEST(SweepFusedAxis, FusedAndUnfusedCellsConvergeIdentically) {
  InputDeck base = decks::hot_block(16, 1);
  base.solver.eps = 1e-8;
  SweepSpec spec;
  spec.solvers = {"cg", "ppcg", "mg-pcg"};
  spec.fused = {0, 1};
  spec.ranks = 2;
  const SweepReport rep = run_sweep(base, spec);
  ASSERT_EQ(rep.cells.size(), 6u);

  // mg-pcg's fused path hoists its V-cycle row loops into one team
  // region per iteration: the sixth axis no longer skips the baseline,
  // and the engine stays a pure-speed axis (identical iterations).
  const SweepOutcome& mg_unfused = rep.cells[4];
  const SweepOutcome& mg_fused = rep.cells[5];
  ASSERT_EQ(mg_fused.config.solver, "mg-pcg");
  ASSERT_TRUE(mg_fused.config.fused);
  EXPECT_FALSE(mg_fused.skipped);
  EXPECT_TRUE(mg_fused.converged);
  EXPECT_EQ(mg_fused.iterations, mg_unfused.iterations);
  EXPECT_EQ(mg_fused.final_norm, mg_unfused.final_norm);

  // Native solvers: the engine is a pure-speed axis — identical
  // iteration counts and communication per fused/unfused pair.
  for (const std::size_t i : {0u, 2u}) {
    const SweepOutcome& unfused = rep.cells[i];
    const SweepOutcome& fused = rep.cells[i + 1];
    ASSERT_FALSE(unfused.config.fused);
    ASSERT_TRUE(fused.config.fused);
    EXPECT_TRUE(unfused.converged) << unfused.config.label();
    EXPECT_TRUE(fused.converged) << fused.config.label();
    EXPECT_EQ(fused.iterations, unfused.iterations);
    EXPECT_EQ(fused.inner_steps, unfused.inner_steps);
    EXPECT_EQ(fused.reductions, unfused.reductions);
    EXPECT_EQ(fused.message_bytes, unfused.message_bytes);
  }

  // The fused flag survives both serialisation round trips.
  const SweepReport csv_back = SweepReport::from_csv_lines(rep.to_csv_lines());
  const SweepReport json_back =
      SweepReport::from_json_string(rep.to_json().dump(2));
  for (std::size_t i = 0; i < rep.cells.size(); ++i) {
    EXPECT_EQ(csv_back.cells[i].config.fused, rep.cells[i].config.fused);
    EXPECT_EQ(json_back.cells[i].config.fused, rep.cells[i].config.fused);
    EXPECT_EQ(csv_back.cells[i].config.label(), rep.cells[i].config.label());
  }
}

TEST(SweepBreakdown, BreakdownRowFailsWithoutAbortingTheSweep) {
  // A deck whose PPCG cells reliably break down (two presteps grossly
  // underestimate the spectrum; the odd-degree Chebyshev polynomial goes
  // negative beyond the estimated window → ⟨r, M⁻¹r⟩ <= 0).  The sweep
  // must record those rows as failed and still run the CG cells.
  InputDeck base = decks::crooked_pipe(32, 1);
  base.initial_timestep *= 1000.0;
  base.solver.eigen_cg_iters = 2;
  base.solver.inner_steps = 11;
  base.solver.eps = 1e-8;
  base.solver.max_iters = 20000;
  base.sweep.solvers = {"cg", "ppcg"};
  base.sweep.fused = {0, 1};
  base.sweep.ranks = 2;

  const SweepReport rep = run_sweep(base);
  ASSERT_EQ(rep.cells.size(), 4u);
  int failed = 0, ok = 0;
  for (const SweepOutcome& c : rep.cells) {
    ASSERT_FALSE(c.skipped);
    if (c.config.solver == "ppcg") {
      EXPECT_FALSE(c.converged) << c.config.label();
      EXPECT_FALSE(c.fail_reason.empty()) << c.config.label();
      EXPECT_NE(c.fail_reason.find("breakdown"), std::string::npos);
      ++failed;
    } else {
      EXPECT_TRUE(c.converged) << c.config.label();
      EXPECT_TRUE(c.fail_reason.empty()) << c.config.label();
      ++ok;
    }
  }
  EXPECT_EQ(failed, 2);
  EXPECT_EQ(ok, 2);

  // Failed rows are excluded from the ranking but present in the table;
  // the JSON form carries the reason, the CSV status says "failed".
  EXPECT_EQ(rep.ranking().size(), 2u);
  const SweepReport json_back =
      SweepReport::from_json_string(rep.to_json().dump(2));
  EXPECT_EQ(json_back.cells[1].fail_reason, rep.cells[1].fail_reason);
  const std::vector<std::string> lines = rep.to_csv_lines();
  int failed_rows = 0;
  for (const std::string& line : lines) {
    if (line.find(",failed,") != std::string::npos) ++failed_rows;
  }
  EXPECT_EQ(failed_rows, 2);
}

TEST(SweepScalingBridge, SpeedupsComeFromScalingModelHelper) {
  EXPECT_EQ(relative_speedups({}).size(), 0u);
  const std::vector<double> s = relative_speedups({2.0, 1.0, 0.0, 4.0});
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[0], 0.5);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
  EXPECT_DOUBLE_EQ(s[2], 0.0);  // failed run
  EXPECT_DOUBLE_EQ(s[3], 0.25);

  const ScalingSeries series =
      measured_series("threads", {{1, 8.0}, {2, 4.0}, {4, 4.0}});
  const std::vector<double> eff = scaling_efficiency(series);
  ASSERT_EQ(eff.size(), 3u);
  EXPECT_DOUBLE_EQ(eff[0], 1.0);
  EXPECT_DOUBLE_EQ(eff[1], 1.0);
  EXPECT_DOUBLE_EQ(eff[2], 0.5);
}

// ---- eighth axis: geometry (2d | 3d) -------------------------------------

TEST(SweepGeometryAxis, EnumeratesAsEighthInnermostAxis) {
  SweepSpec spec;
  spec.solvers = {"cg"};
  spec.fused = {0, 1};
  spec.geometries = {2, 3};
  const std::vector<SweepCase> cases = enumerate_cases(spec, 16);
  ASSERT_EQ(cases.size(), 4u);
  ASSERT_EQ(spec.num_cases(), 4u);
  EXPECT_EQ(cases[0].label(), "cg/none/d1/n16/t0");
  EXPECT_EQ(cases[1].label(), "cg/none/d1/n16/t0/3d");
  EXPECT_EQ(cases[2].label(), "cg/none/d1/n16/t0/fused");
  EXPECT_EQ(cases[3].label(), "cg/none/d1/n16/t0/fused/3d");
  spec.geometries = {4};
  EXPECT_THROW(spec.validate(), TeaError);
}

TEST(SweepGeometryAxis, RanksConverged2DAnd3DRowsAndRoundTrips) {
  InputDeck base = decks::hot_block(12, 1);
  base.solver.eps = 1e-8;
  SweepSpec spec;
  spec.solvers = {"cg", "jacobi", "chebyshev", "ppcg", "mg-pcg"};
  spec.geometries = {2, 3};
  spec.ranks = 2;
  const SweepReport rep = run_sweep(base, spec);
  ASSERT_EQ(rep.cells.size(), 10u);

  // EVERY solver — the four natives AND the mg-pcg baseline — converges
  // in BOTH geometries now that the multigrid hierarchy is
  // dimension-generic; no cell of the cross-product is skipped.
  int converged_3d = 0;
  for (const SweepOutcome& c : rep.cells) {
    EXPECT_FALSE(c.skipped) << c.config.label() << ": " << c.skip_reason;
    EXPECT_TRUE(c.converged) << c.config.label();
    EXPECT_TRUE(c.fail_reason.empty()) << c.config.label();
    if (c.config.dims == 3) ++converged_3d;
  }
  EXPECT_EQ(converged_3d, 5);  // one per solver, mg-pcg included

  // 3-D cells move more halo bytes than their 2-D siblings (face-area
  // payloads) and the ranking mixes both geometries.
  EXPECT_GT(rep.cells[1].message_bytes, rep.cells[0].message_bytes);
  bool ranked_3d = false;
  for (const int i : rep.ranking()) {
    if (rep.cells[i].config.dims == 3) ranked_3d = true;
  }
  EXPECT_TRUE(ranked_3d);

  // The geometry column survives both serialisation round trips.
  const std::vector<std::string> lines = rep.to_csv_lines();
  EXPECT_NE(lines.front().find(",geometry,"), std::string::npos);
  const SweepReport csv_back = SweepReport::from_csv_lines(lines);
  const SweepReport json_back =
      SweepReport::from_json_string(rep.to_json().dump(2));
  for (std::size_t i = 0; i < rep.cells.size(); ++i) {
    EXPECT_EQ(csv_back.cells[i].config.dims, rep.cells[i].config.dims);
    EXPECT_EQ(json_back.cells[i].config.dims, rep.cells[i].config.dims);
    EXPECT_EQ(csv_back.cells[i].config.label(), rep.cells[i].config.label());
  }
}

TEST(SweepGeometryAxis, NoMgPcg3DCellIsEverSkipped) {
  // The last hole of the design-space matrix (ROADMAP "3-D mg-pcg"): the
  // mg-pcg × 3d cross-product contributes zero skipped cells across the
  // engine and mesh axes, and each cell ranks as a converged row.
  InputDeck base = decks::hot_block(12, 1);
  base.solver.eps = 1e-8;
  SweepSpec spec;
  spec.solvers = {"mg-pcg"};
  spec.mesh_sizes = {8, 12};
  spec.fused = {0, 1};
  spec.geometries = {3};
  spec.ranks = 2;
  const SweepReport rep = run_sweep(base, spec);
  ASSERT_EQ(rep.cells.size(), 4u);
  for (const SweepOutcome& c : rep.cells) {
    EXPECT_FALSE(c.skipped) << c.config.label() << ": " << c.skip_reason;
    EXPECT_TRUE(c.converged) << c.config.label();
    EXPECT_GT(c.iterations, 0) << c.config.label();
  }
  EXPECT_EQ(rep.ranking().size(), 4u);

  // The engine axis stays pure speed in 3-D: fused and unfused mg-pcg
  // cells run identical iteration counts and final norms.
  for (const std::size_t i : {0u, 2u}) {
    EXPECT_EQ(rep.cells[i + 1].iterations, rep.cells[i].iterations);
    EXPECT_EQ(rep.cells[i + 1].final_norm, rep.cells[i].final_norm);
  }
}

TEST(SweepGeometryAxis, SkipPlumbingStillFiresForInvalidCombos) {
  // Retiring the mg-pcg × 3d skip must not have loosened the genuinely
  // invalid combinations: tiled × unfused still records a reasoned skip
  // (in both geometries), as do mg-pcg's preconditioner/depth/tile
  // contracts.
  InputDeck base = decks::hot_block(12, 1);
  base.solver.eps = 1e-8;
  SweepSpec spec;
  spec.solvers = {"cg", "mg-pcg"};
  spec.fused = {0};
  spec.tile_rows = {4};
  spec.geometries = {2, 3};
  spec.ranks = 2;
  const SweepReport rep = run_sweep(base, spec);
  ASSERT_EQ(rep.cells.size(), 4u);
  for (const SweepOutcome& c : rep.cells) {
    EXPECT_TRUE(c.skipped) << c.config.label();
    EXPECT_NE(c.skip_reason.find("row tiling requires the fused"),
              std::string::npos)
        << c.skip_reason;
  }

  SweepSpec mg;
  mg.solvers = {"mg-pcg"};
  mg.precons = {PreconType::kJacobiDiag};
  mg.geometries = {3};
  mg.ranks = 2;
  const SweepReport rep2 = run_sweep(base, mg);
  ASSERT_EQ(rep2.cells.size(), 1u);
  EXPECT_TRUE(rep2.cells[0].skipped);
  EXPECT_NE(rep2.cells[0].skip_reason.find("embeds multigrid"),
            std::string::npos)
      << rep2.cells[0].skip_reason;
}

TEST(SweepGeometryAxis, SlabCellMatches2DIterationCounts) {
  // The cross-dimension consistency contract surfaces in the sweep too:
  // with z extents mirroring x, a 3-D hot-block cell is the extruded 2-D
  // problem, and its iteration counts track the 2-D cell's closely (the
  // solve is plane-wise identical up to the z coupling of the extruded
  // states' edges).  Exact equality is covered by test_geometry3d; here
  // we assert the sweep wiring produced a genuinely comparable problem.
  InputDeck base = decks::hot_block(12, 1);
  base.solver.eps = 1e-8;
  SweepSpec spec;
  spec.solvers = {"cg"};
  spec.geometries = {2, 3};
  spec.ranks = 2;
  const SweepReport rep = run_sweep(base, spec);
  ASSERT_EQ(rep.cells.size(), 2u);
  ASSERT_TRUE(rep.cells[0].converged);
  ASSERT_TRUE(rep.cells[1].converged);
  EXPECT_GT(rep.cells[1].iterations, 0);
  EXPECT_LT(std::abs(rep.cells[1].iterations - rep.cells[0].iterations),
            rep.cells[0].iterations);  // same order of magnitude
}


TEST(SweepPrecisionAxis, EnumeratesAsEleventhInnermostAxis) {
  SweepSpec spec;
  spec.solvers = {"cg"};
  spec.fused = {0, 1};
  spec.precisions = {"double", "fp32", "mixed"};  // alias canonicalises
  const std::vector<SweepCase> cases = enumerate_cases(spec, 16);
  ASSERT_EQ(cases.size(), 6u);
  ASSERT_EQ(spec.num_cases(), 6u);
  // Precision is the innermost axis and its label suffix comes last.
  EXPECT_EQ(cases[0].label(), "cg/none/d1/n16/t0");
  EXPECT_EQ(cases[1].label(), "cg/none/d1/n16/t0/f32");
  EXPECT_EQ(cases[2].label(), "cg/none/d1/n16/t0/mixed");
  EXPECT_EQ(cases[3].label(), "cg/none/d1/n16/t0/fused");
  EXPECT_EQ(cases[4].label(), "cg/none/d1/n16/t0/fused/f32");
  EXPECT_EQ(cases[5].label(), "cg/none/d1/n16/t0/fused/mixed");
  EXPECT_EQ(cases[1].precision, "single");  // canonical name, not the alias
  spec.precisions = {"half"};
  EXPECT_THROW(spec.validate(), TeaError);
}

TEST(SweepPrecisionAxis, RanksConvergedCellsAndRoundTrips) {
  InputDeck base = decks::hot_block(16, 1);
  base.solver.eps = 1e-8;
  SweepSpec spec;
  spec.solvers = {"cg", "mg-pcg"};
  spec.precisions = {"double", "mixed"};
  spec.ranks = 2;
  const SweepReport rep = run_sweep(base, spec);
  ASSERT_EQ(rep.cells.size(), 4u);

  // cg runs in both precisions and both converge to the deck's tl_eps;
  // the double and mixed rows agree on the physics (same operator, same
  // target) while taking their own iteration counts.
  EXPECT_FALSE(rep.cells[0].skipped);
  EXPECT_FALSE(rep.cells[1].skipped);
  EXPECT_TRUE(rep.cells[0].converged) << rep.cells[0].config.label();
  EXPECT_TRUE(rep.cells[1].converged) << rep.cells[1].config.label();
  EXPECT_EQ(rep.cells[1].config.label(), "cg/none/d1/n16/t0/mixed");

  // mg-pcg stays double-only: the mixed cell is a reasoned skip, the
  // double cell runs.
  EXPECT_FALSE(rep.cells[2].skipped);
  EXPECT_TRUE(rep.cells[3].skipped);
  EXPECT_NE(rep.cells[3].skip_reason.find("double-only"), std::string::npos);

  // The precision column survives both serialisation round trips.
  const std::vector<std::string> lines = rep.to_csv_lines();
  EXPECT_NE(lines.front().find(",precision,"), std::string::npos);
  const SweepReport csv_back = SweepReport::from_csv_lines(lines);
  const SweepReport json_back =
      SweepReport::from_json_string(rep.to_json().dump(2));
  for (std::size_t i = 0; i < rep.cells.size(); ++i) {
    EXPECT_EQ(csv_back.cells[i].config.precision,
              rep.cells[i].config.precision);
    EXPECT_EQ(json_back.cells[i].config.precision,
              rep.cells[i].config.precision);
    EXPECT_EQ(csv_back.cells[i].config.label(), rep.cells[i].config.label());
  }
}

}  // namespace
}  // namespace tealeaf
