// Strong-scaling study driver: measure a solver's iteration structure on
// a real (simulated-cluster) run, then project time-to-solution across
// node counts of a modelled machine — the workflow behind Figs. 5-8.
//
// Run:  ./examples/scaling_study [--mesh 128] [--machine titan|daint|spruce]
//       [--project-mesh 4000] [--steps 10]

#include <cstdio>
#include <vector>

#include "driver/decks.hpp"
#include "driver/tealeaf_app.hpp"
#include "model/machine.hpp"
#include "model/scaling.hpp"
#include "model/trace.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace tealeaf;
  const Args args(argc, argv);
  const int n = args.get_int("mesh", 128);
  const int project_n = args.get_int("project-mesh", 4000);
  const int steps = args.get_int("steps", 10);
  const std::string machine = args.get("machine", "titan");

  MachineSpec spec = machines::titan();
  if (machine == "daint") spec = machines::piz_daint();
  if (machine == "spruce") spec = machines::spruce_hybrid();

  // Measure the real iteration structure once per configuration.
  std::printf("measuring solver structure on a %dx%d crooked pipe...\n", n,
              n);
  std::vector<std::pair<std::string, SolverRunSummary>> runs;
  for (const int depth : {0, 1, 4, 16}) {  // 0 = plain CG
    InputDeck deck = decks::crooked_pipe(n, 1);
    deck.solver.type = depth == 0 ? SolverType::kCG : SolverType::kPPCG;
    deck.solver.halo_depth = std::max(1, depth);
    deck.solver.eps = 1e-8;
    deck.solver.max_iters = 100000;
    TeaLeafApp app(deck, 4);
    const SolveStats st = app.step();
    if (!st.converged) std::printf("  warning: %d did not converge\n", depth);
    SolverRunSummary run = SolverRunSummary::from(deck.solver, st, n);
    const std::string label =
        depth == 0 ? "CG - 1" : "PPCG - " + std::to_string(depth);
    std::printf("  %-9s outer=%d presteps=%d\n", label.c_str(),
                run.outer_iters, run.eigen_cg_iters);
    runs.emplace_back(label, project_to_mesh(run, project_n));
  }

  const GlobalMesh2D target(project_n, project_n, 0.0, 10.0, 0.0, 10.0);
  const ScalingModel model(spec, target, steps);
  const std::vector<int> nodes = {1,   2,   4,   8,   16,   32,  64,
                                  128, 256, 512, 1024, 2048, 4096, 8192};

  std::printf("\nprojected time-to-solution on %s, %dx%d, %d steps\n",
              spec.name.c_str(), project_n, project_n, steps);
  std::printf("%-6s", "nodes");
  for (const auto& [label, run] : runs) std::printf(" %12s", label.c_str());
  std::printf("\n");
  for (const int p : nodes) {
    std::printf("%-6d", p);
    for (const auto& [label, run] : runs) {
      std::printf(" %12.3f", model.run_seconds(run, p));
    }
    std::printf("\n");
  }
  return 0;
}
