// Assembled-operator workflow end to end: build a finite-element system
// the stencil path cannot represent, write it as a Matrix Market file,
// and solve it through the SolveServer on the assembled CSR and
// SELL-C-σ paths (the MiniFE-style use of the solver stack).
//
// The operator is the Q1 Galerkin discretisation of one implicit heat
// step on the unit square: A = M + dt·K over (n+1)² nodes, where M is
// the consistent mass matrix and K the stiffness matrix.  A is SPD (pure
// Neumann K plus a positive-definite M), nine entries per interior row —
// a genuinely different sparsity pattern from the deck's 5-point
// stencil.  The deck's material states still provide the right-hand
// side (u0 = ρ·e per node).
//
// Build & run:  ./examples/fem_assembly [--elems 15] [--dt 0.05]
//               [--out fem_system.mtx]
// Exits non-zero if either assembled solve fails to converge or the two
// formats disagree.

#include <cstdio>
#include <map>
#include <utility>

#include "io/matrix_market.hpp"
#include "server/solve_server.hpp"
#include "util/args.hpp"

namespace {

/// Assemble A = M + dt·K on an elems × elems Q1 grid of the unit square.
tealeaf::io::TripletMatrix assemble_q1(int elems, double dt) {
  const int nodes = elems + 1;
  const double h = 1.0 / elems;
  // Element matrices on a square Q1 element, local nodes numbered
  // (0,0) (1,0) (0,1) (1,1).  K_e is h-independent in 2-D; M_e ∝ h².
  const double K[4][4] = {{4, -1, -1, -2},
                          {-1, 4, -2, -1},
                          {-1, -2, 4, -1},
                          {-2, -1, -1, 4}};
  const double M[4][4] = {{4, 2, 2, 1},
                          {2, 4, 1, 2},
                          {2, 1, 4, 2},
                          {1, 2, 2, 4}};
  const double kw = dt / 6.0;
  const double mw = h * h / 36.0;

  std::map<std::pair<std::int64_t, std::int64_t>, double> acc;
  for (int ey = 0; ey < elems; ++ey) {
    for (int ex = 0; ex < elems; ++ex) {
      const std::int64_t base =
          static_cast<std::int64_t>(ey) * nodes + ex;
      const std::int64_t local[4] = {base, base + 1, base + nodes,
                                     base + nodes + 1};
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
          acc[{local[a], local[b]}] += mw * M[a][b] + kw * K[a][b];
        }
      }
    }
  }
  tealeaf::io::TripletMatrix m;
  m.n = static_cast<std::int64_t>(nodes) * nodes;
  m.entries.reserve(acc.size());
  for (const auto& [rc, v] : acc) m.entries.push_back({rc.first, rc.second, v});
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const tealeaf::Args args(argc, argv);
  const int elems = args.get_int("elems", 15);
  const double dt = args.get_double("dt", 0.05);
  const std::string path = args.get("out", "fem_system.mtx");
  const int nodes = elems + 1;

  const tealeaf::io::TripletMatrix system = assemble_q1(elems, dt);
  tealeaf::io::save_matrix_market(path, system);
  std::printf("fem_assembly: %dx%d Q1 nodes, %lld rows, %zu entries -> %s\n",
              nodes, nodes, static_cast<long long>(system.n),
              system.entries.size(), path.c_str());

  // The deck maps the matrix rows onto an x_cells × y_cells grid and
  // supplies the right-hand side from its states: a hot square patch on
  // a unit background.
  tealeaf::InputDeck deck;
  deck.x_cells = nodes;
  deck.y_cells = nodes;
  deck.end_step = 1;
  deck.matrix_file = path;
  deck.solver.type = tealeaf::SolverType::kCG;
  deck.solver.op = tealeaf::OperatorKind::kCsr;
  deck.solver.eps = 1e-10;
  tealeaf::StateDef bg;
  deck.states.push_back(bg);
  tealeaf::StateDef hot;
  hot.geometry = tealeaf::StateDef::Geometry::kRectangle;
  hot.energy = 10.0;
  hot.xmin = 2.0;
  hot.xmax = 6.0;
  hot.ymin = 2.0;
  hot.ymax = 6.0;
  deck.states.push_back(hot);
  deck.validate();

  tealeaf::SolveServer server;
  int failures = 0;
  int csr_iters = -1;
  double csr_norm = 0.0;
  for (const tealeaf::OperatorKind op :
       {tealeaf::OperatorKind::kCsr, tealeaf::OperatorKind::kSellCSigma}) {
    tealeaf::SolveRequest req;
    req.deck = deck;
    req.deck.solver.op = op;
    req.nranks = 1;  // loaded operators cover the undecomposed mesh
    req.tag = tealeaf::to_string(op);
    const tealeaf::SolveResult res = server.solve_one(std::move(req));
    std::printf(
        "%-12s  iters=%4d  |r|=%9.2e  nnz/row=%.2f  %s\n",
        res.tag.c_str(), res.stats.outer_iters, res.stats.final_norm,
        res.stats.nnz_per_row,
        res.ok() ? "converged" : "NOT CONVERGED");
    if (!res.ok()) ++failures;
    if (op == tealeaf::OperatorKind::kCsr) {
      csr_iters = res.stats.outer_iters;
      csr_norm = res.stats.final_norm;
    } else if (res.stats.outer_iters != csr_iters ||
               res.stats.final_norm != csr_norm) {
      // SELL-C-σ is a storage permutation of the same matrix: the solves
      // must agree bit for bit.
      std::printf("MISMATCH: sell-c-sigma diverged from csr\n");
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("FEM OK: %lld-row Matrix Market system solved on both "
                "assembled paths\n",
                static_cast<long long>(system.n));
  }
  return failures == 0 ? 0 : 1;
}
