// Run an arbitrary tea.in-style deck file through the driver — the
// classic TeaLeaf command-line workflow.
//
// Run:  ./examples/deck_runner path/to/tea.in [--ranks 4] [--summary-every 10]

#include <cstdio>
#include <fstream>

#include "driver/deck.hpp"
#include "driver/decks.hpp"
#include "driver/tealeaf_app.hpp"
#include "util/args.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  const tealeaf::Args args(argc, argv);
  if (args.positional().empty()) {
    std::printf("usage: %s <deck-file> [--ranks N] [--summary-every K]\n",
                args.program().c_str());
    std::printf("example deck:\n%s\n",
                tealeaf::decks::hot_block(64, 10).to_string().c_str());
    return 1;
  }
  const int ranks = args.get_int("ranks", 4);
  const int every = args.get_int("summary-every", 10);

  std::ifstream in(args.positional()[0]);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", args.positional()[0].c_str());
    return 1;
  }
  tealeaf::InputDeck deck;
  try {
    deck = tealeaf::InputDeck::parse(in);
  } catch (const tealeaf::TeaError& e) {
    std::fprintf(stderr, "deck error: %s\n", e.what());
    return 1;
  }

  // Solve-time failures (bad config combinations, matrix_file constraint
  // violations) share the parse error's idiom rather than terminating.
  try {
    tealeaf::TeaLeafApp app(deck, ranks);
    const int steps = deck.num_steps();
    std::printf("running %d steps of %dx%d with %s\n", steps, deck.x_cells,
                deck.y_cells, tealeaf::to_string(deck.solver.type));
    for (int s = 1; s <= steps; ++s) {
      const tealeaf::SolveStats st = app.step();
      if (s % every == 0 || s == steps || !st.converged) {
        const tealeaf::FieldSummary fs = app.field_summary();
        std::printf(
            "step %4d t=%8.3f iters=%5d |r|=%8.2e avg_temp=%10.6f%s\n", s,
            app.sim_time(), st.outer_iters, st.final_norm, fs.avg_temp(),
            st.converged ? "" : "  ** not converged");
      }
    }
  } catch (const tealeaf::TeaError& e) {
    std::fprintf(stderr, "deck error: %s\n", e.what());
    return 1;
  }
  return 0;
}
