// 3-D heat diffusion (upstream TeaLeaf3D, 7-point stencil): a hot
// spherical inclusion diffusing through a layered 3-D material, solved
// with CPPCG + matrix powers on the simulated cluster.
//
// Since the dimension-generic core retired the tea3d fork, this example
// runs through exactly the same mesh/comm/solver stack as every 2-D run —
// including the fused execution engine and row tiling (--fused, --tile).
//
// Run:  ./examples/heat3d [--mesh 24] [--ranks 8] [--steps 3] [--depth 2]
//                         [--fused 1] [--tile 8]

#include <cmath>
#include <cstdio>

#include "comm/sim_comm.hpp"
#include "ops/kernels.hpp"
#include "solvers/solver.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace tealeaf;
  const Args args(argc, argv);
  const int n = args.get_int("mesh", 24);
  const int ranks = args.get_int("ranks", 8);
  const int steps = args.get_int("steps", 3);
  const int depth = args.get_int("depth", 2);

  const double dt = 0.04;
  const GlobalMesh mesh = GlobalMesh::brick3d(n, n, n, 10.0);
  SimCluster cl(mesh, ranks, std::max(2, depth));

  // Layered density with a light spherical inclusion at the centre (low
  // density = high conduction under the resistivity-mean face formula).
  cl.for_each_chunk([&](int, Chunk& c) {
    for (int l = 0; l < c.nz(); ++l) {
      for (int k = 0; k < c.ny(); ++k) {
        for (int j = 0; j < c.nx(); ++j) {
          const double x = c.cell_x(j);
          const double y = c.cell_y(k);
          const double z = c.cell_z(l);
          const double r2 = (x - 5) * (x - 5) + (y - 5) * (y - 5) +
                            (z - 5) * (z - 5);
          c.density()(j, k, l) = (y < 3.0) ? 10.0 : 2.0;
          c.energy()(j, k, l) = 0.01;
          if (r2 < 2.0 * 2.0) {
            c.density()(j, k, l) = 0.1;
            c.energy()(j, k, l) = 10.0;
          }
        }
      }
    }
  });

  SolverConfig cfg;
  cfg.type = SolverType::kPPCG;
  cfg.halo_depth = depth;
  cfg.inner_steps = 10;
  cfg.eigen_cg_iters = 15;
  cfg.eps = 1e-9;
  cfg.max_iters = 50000;
  cfg.fuse_kernels = args.get_int("fused", 0) != 0;
  cfg.tile_rows = args.get_int("tile", 0);

  std::printf("heat3d: %d^3 cells on %d simulated ranks (%dx%dx%d), "
              "PPCG depth %d%s\n", n, cl.nranks(),
              cl.decomposition().px(), cl.decomposition().py(),
              cl.decomposition().pz(), depth,
              cfg.fuse_kernels ? " [fused engine]" : "");

  const double rx = dt / (mesh.dx() * mesh.dx());
  const double ry = dt / (mesh.dy() * mesh.dy());
  const double rz = dt / (mesh.dz() * mesh.dz());
  for (int s = 1; s <= steps; ++s) {
    cl.exchange({FieldId::kDensity, FieldId::kEnergy1}, cl.halo_depth());
    cl.for_each_chunk([&](int, Chunk& c) {
      kernels::init_u_u0(c);
      kernels::init_conduction(c, kernels::Coefficient::kConductivity, rx,
                               ry, rz);
    });
    const SolveStats st = run_solver(cl, cfg);
    cl.for_each_chunk([](int, Chunk& c) {
      for (int l = 0; l < c.nz(); ++l)
        for (int k = 0; k < c.ny(); ++k)
          for (int j = 0; j < c.nx(); ++j)
            c.energy()(j, k, l) = c.u()(j, k, l) / c.density()(j, k, l);
    });
    const double total_u = cl.sum_over_chunks(
        [](int, Chunk& c) { return c.u().sum_interior(); });
    std::printf("step %d: outer=%4d inner=%5lld spmv=%5lld |r|=%8.2e "
                "sum(u)=%.6f %s\n", s, st.outer_iters, st.inner_steps,
                st.spmv_applies, st.final_norm,
                total_u / mesh.cell_count(),
                st.converged ? "" : " ** not converged");
  }

  const auto& stats = cl.stats();
  std::printf("communication: %lld exchanges, %lld messages, %.2f MB, "
              "%lld reductions\n",
              static_cast<long long>(stats.exchange_calls),
              static_cast<long long>(stats.messages),
              static_cast<double>(stats.message_bytes) / 1.0e6,
              static_cast<long long>(stats.reductions));
  return 0;
}
