// Solve-server mode: feed a stream of SolveRequests through the batched
// many-solve engine and report service metrics — throughput, latency
// quantiles, session-cache reuse, the one-shot breakdown re-route, and
// (with --learn) the online routing-refinement loop.
//
// The stream mixes two problem shapes (so same-shape requests coalesce
// into sub-team batches while the shapes keep separate session pools),
// a sprinkling of mixed-precision requests (fp32 inner solves under the
// fp64 refinement guard, served solo from precision-keyed sessions), one
// Matrix-Market-backed request (the example writes a small 5-point SPD
// system and solves it through the assembled CSR path), and, unless
// --no-poison, one mixed-precision request carrying a stale eigenvalue
// hint that deterministically breaks down and must be re-routed —
// keeping its precision — to complete.
//
// Run:  ./examples/solve_server [--requests 20] [--mesh 48] [--mesh2 64]
//           [--ranks 2] [--batch 8] [--routes sweep.json] [--no-poison]
//           [--mtx server_smoke.mtx]
//           [--learn] [--db route_db.json] [--waves 1] [--adversarial]
//
// Learning mode (--learn): each converged request's measured latency is
// fed back into the routing table (EWMA + demotion — docs/routing.md);
// --waves N drains the stream in N slices so what wave k learns re-routes
// wave k+1; --db persists the accumulated RouteDatabase across runs
// (merge-on-load); --adversarial seeds the table with a deliberately
// mislabeled best route (an unfused chebyshev entry "measured" at 0.1 µs)
// so the run demonstrates online demotion converging onto the genuinely
// fastest route.  Promotion/demotion events and a per-route attribution
// table (requests, p50, observed-vs-predicted ratio, demotions) make the
// learning legible.
//
// Exits non-zero if any request fails to converge — the CI server-smoke
// job runs exactly this binary (twice, for the learning half).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "driver/decks.hpp"
#include "io/matrix_market.hpp"
#include "server/routing.hpp"
#include "server/solve_server.hpp"
#include "util/args.hpp"
#include "util/error.hpp"

namespace {

/// Write a 5-point SPD system (2-D Laplacian + identity on an n × n
/// grid) as a Matrix Market file and return a single-rank request that
/// solves it through the assembled CSR path.
tealeaf::SolveRequest make_mtx_request(int n, const std::string& path) {
  using namespace tealeaf;
  io::TripletMatrix m;
  m.n = static_cast<std::int64_t>(n) * n;
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const std::int64_t row = static_cast<std::int64_t>(k) * n + j;
      m.entries.push_back({row, row, 5.0});
      if (j > 0) m.entries.push_back({row, row - 1, -1.0});
      if (j < n - 1) m.entries.push_back({row, row + 1, -1.0});
      if (k > 0) m.entries.push_back({row, row - n, -1.0});
      if (k < n - 1) m.entries.push_back({row, row + n, -1.0});
    }
  }
  io::save_matrix_market(path, m);

  SolveRequest req;
  req.deck.x_cells = n;
  req.deck.y_cells = n;
  req.deck.end_step = 1;
  req.deck.matrix_file = path;
  req.deck.solver.type = SolverType::kCG;
  req.deck.solver.op = OperatorKind::kCsr;
  req.deck.states.push_back({});  // unit background: u0 = 1 per row
  req.deck.validate();
  req.nranks = 1;  // loaded operators cover the undecomposed mesh
  req.tag = "req-mtx";
  return req;
}

/// An adversarially WRONG seed table: an unfused chebyshev entry claims
/// to be absurdly fast (0.1 µs — no solve on any machine is), while the
/// honest cg/ppcg entries carry pessimistically slow predictions.  With
/// learning on, the measured latencies expose the lie: the chebyshev
/// route's observed/predicted ratio explodes past the demotion threshold
/// and the next-ranked entry takes over.
tealeaf::RoutingTable adversarial_table(int mesh, int mesh2, int ranks) {
  using namespace tealeaf;
  SweepReport report;
  report.ranks = ranks;
  report.steps = 1;
  const auto add = [&report](const std::string& solver, PreconType precon,
                             int depth, bool fused, int mesh_n,
                             double seconds, int iters) {
    SweepOutcome cell;
    cell.config.solver = solver;
    cell.config.precon = precon;
    cell.config.halo_depth = depth;
    cell.config.fused = fused;
    cell.config.mesh_n = mesh_n;
    cell.converged = true;
    cell.iterations = iters;
    cell.solve_seconds = seconds;
    report.cells.push_back(cell);
  };
  for (const int n : {mesh, mesh2}) {
    add("chebyshev", PreconType::kNone, 1, false, n, 1e-7, 50);  // the lie
    add("cg", PreconType::kNone, 1, true, n, 5.0, 60);
    add("ppcg", PreconType::kJacobiDiag, 2, true, n, 6.0, 40);
  }
  return RoutingTable::from_sweep(report);
}

/// Demotion state per (shape, route) cell — diffed across drain waves to
/// print promotion/demotion events.
std::map<std::string, bool> demotion_snapshot(
    const tealeaf::RouteDatabase& db) {
  std::map<std::string, bool> snap;
  for (const auto& [shape, routes] : db.cells()) {
    for (const auto& [route, obs] : routes) {
      snap[shape + "  " + route] = obs.demoted;
    }
  }
  return snap;
}

void print_events(const tealeaf::RouteDatabase& db,
                  std::map<std::string, bool>& prev) {
  const std::map<std::string, bool> now = demotion_snapshot(db);
  for (const auto& [cell, demoted] : now) {
    const auto it = prev.find(cell);
    const bool was = it != prev.end() && it->second;
    if (demoted && !was) {
      std::printf("event: DEMOTED   %s\n", cell.c_str());
    } else if (!demoted && was) {
      std::printf("event: PROMOTED  %s\n", cell.c_str());
    }
  }
  prev = now;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

int run(const tealeaf::Args& args) {
  using namespace tealeaf;
  const int requests = args.get_int("requests", 20);
  const int mesh = args.get_int("mesh", 48);
  const int mesh2 = args.get_int("mesh2", 64);
  const int ranks = args.get_int("ranks", 2);
  const bool poison = !args.has("no-poison");
  const bool learn = args.has("learn");
  const int waves = std::max(1, args.get_int("waves", 1));
  const std::string db_path = args.get("db", "");

  ServerOptions opts;
  opts.max_batch = args.get_int("batch", 8);
  opts.learn_routes = learn;
  opts.route_db_path = db_path;
  const std::string routes = args.get("routes", "");
  if (!routes.empty()) {
    opts.routes = RoutingTable::from_json_file(routes);
    std::printf("routing table: %zu measured cells (swept on %d ranks)\n",
                opts.routes.size(), opts.routes.sweep_ranks());
  } else if (args.has("adversarial")) {
    opts.routes = adversarial_table(mesh, mesh2, ranks);
    std::printf("routing table: adversarial seed (%zu cells, best route "
                "mislabeled at 0.1 us)\n",
                opts.routes.size());
  }
  if (!db_path.empty()) {
    const RouteDatabase existing = RouteDatabase::load_if_exists(db_path);
    if (existing.empty()) {
      std::printf("route db: starting fresh at %s\n", db_path.c_str());
    } else {
      std::printf("route db: loaded %zu cells over %zu shapes from %s\n",
                  existing.size(), existing.shapes(), db_path.c_str());
    }
  }
  SolveServer server(std::move(opts));

  // Mixed-shape stream: two meshes interleaved 2:1, so drain() coalesces
  // each shape into batches while exercising the shape-keyed cache.
  std::vector<SolveRequest> stream;
  for (int i = 0; i < requests; ++i) {
    SolveRequest req;
    req.deck = decks::layered_material(i % 3 == 2 ? mesh2 : mesh, 1);
    req.nranks = ranks;
    req.tag = "req-" + std::to_string(i);
    if (i % 5 == 3) {
      // Mixed-precision rider: fp32 inner solves inside the fp64
      // iterative-refinement guard, to the same eps as the fp64 stream.
      // Precision is part of the session shape key, so these never share
      // (or poison the eigen memos of) the fp64 sessions beside them.
      req.deck.solver.precision = Precision::kMixed;
      req.tag += "-mixed";
    }
    if (poison && i == requests / 2) {
      // A stale eigenvalue estimate: below-spectrum interval with an odd
      // inner-step count makes the polynomial preconditioner indefinite —
      // deterministic rz-breakdown, completed only by the re-route.  The
      // request also asks for mixed precision: the breakdown surfaces
      // from the fp32 inner solve and the re-route strips the hints while
      // KEEPING the precision (the session is keyed on it).
      SolverConfig bad = req.deck.solver;
      bad.type = SolverType::kPPCG;
      bad.inner_steps = 3;
      bad.eig_hint_min = 0.1;
      bad.eig_hint_max = 0.2;
      bad.precision = Precision::kMixed;
      req.config = bad;
      req.tag += "-stale-hint-mixed";
    }
    stream.push_back(std::move(req));
  }
  // One assembled-operator request rides along: a Matrix Market system
  // the example writes itself, routed onto the CSR path.
  stream.push_back(
      make_mtx_request(16, args.get("mtx", "server_smoke.mtx")));

  // Drain in waves: each wave's measured latencies are already folded
  // into the table when the next wave routes, so a demotion learned early
  // re-routes the rest of the stream within this run.
  std::vector<SolveResult> results;
  std::map<std::string, bool> demoted_before =
      demotion_snapshot(server.routes().database());
  const std::size_t per_wave =
      (stream.size() + static_cast<std::size_t>(waves) - 1) /
      static_cast<std::size_t>(waves);
  for (std::size_t at = 0; at < stream.size(); at += per_wave) {
    const std::size_t end = std::min(stream.size(), at + per_wave);
    for (std::size_t i = at; i < end; ++i) {
      server.submit(std::move(stream[i]));
    }
    std::vector<SolveResult> wave_results = server.drain();
    for (SolveResult& r : wave_results) results.push_back(std::move(r));
    if (learn) print_events(server.routes().database(), demoted_before);
  }

  int failed = 0;
  for (const SolveResult& r : results) {
    const std::string refines =
        r.config.precision == Precision::kMixed
            ? " refine=" + std::to_string(r.stats.refine_steps)
            : "";
    std::printf("%-24s %-28s outer=%4d |r|=%9.2e %8.3f ms%s%s%s%s%s\n",
                r.tag.c_str(),
                r.route_label.empty() ? "(deck config)"
                                      : r.route_label.c_str(),
                r.stats.outer_iters, r.stats.final_norm,
                r.latency_seconds * 1e3, refines.c_str(),
                r.batched ? " [batched]" : "",
                r.cache_hit ? " [cache]" : "",
                r.rerouted ? " [re-routed]" : "",
                r.ok() ? "" : "  FAILED");
    if (!r.ok()) ++failed;
  }

  // Per-route attribution: which configurations actually served the
  // stream, at what latency, and how observation compared to prediction.
  struct RouteAgg {
    std::vector<double> latencies;
    double predicted = 0.0;
    long long observations = 0;
    bool demoted = false;
  };
  std::map<std::string, RouteAgg> by_route;
  for (const SolveResult& r : results) {
    RouteAgg& a = by_route[r.route_label.empty() ? "(deck config)"
                                                 : r.route_label];
    a.latencies.push_back(r.latency_seconds);
    if (r.predicted_route_seconds > 0.0) {
      a.predicted = r.predicted_route_seconds;
    }
    a.observations = std::max(a.observations, r.route_observations);
    a.demoted = a.demoted || r.route_demoted;
  }
  std::printf("\nper-route attribution:\n");
  std::printf("%-34s %8s %10s %10s %6s %8s\n", "route", "requests",
              "p50 ms", "obs/pred", "obs", "demoted");
  for (const auto& [label, a] : by_route) {
    const double p50 = median(a.latencies);
    char ratio[32];
    if (a.predicted > 0.0) {
      std::snprintf(ratio, sizeof ratio, "%.2g", p50 / a.predicted);
    } else {
      std::snprintf(ratio, sizeof ratio, "-");
    }
    std::printf("%-34s %8zu %10.3f %10s %6lld %8s\n", label.c_str(),
                a.latencies.size(), p50 * 1e3, ratio, a.observations,
                a.demoted ? "yes" : "no");
  }

  const ServerStats& st = server.stats();
  std::printf(
      "\nserver: %lld requests in %lld batches (%lld coalesced), "
      "%.1f requests/s\n",
      st.requests, st.batches, st.batched_requests, st.throughput());
  std::printf("latency: p50 %.3f ms, p99 %.3f ms\n", st.p50() * 1e3,
              st.p99() * 1e3);
  std::printf("sessions: %zu live across %zu shapes, %lld hits / %lld "
              "misses\n",
              server.sessions().size(), server.sessions().shapes(),
              st.cache_hits, st.cache_misses);
  std::printf("re-routes: %lld, failures: %lld\n", st.reroutes, st.failures);
  if (learn || !db_path.empty()) {
    const RouteDatabase& db = server.routes().database();
    std::printf("learning: %lld observations fed back, %lld demotions, "
                "%lld promotions\n",
                st.route_observations, st.demotions, st.promotions);
    std::printf("learned routes: %lld (>= %d observations), "
                "%lld demoted cells\n",
                db.learned(server.options().learn.min_observations),
                server.options().learn.min_observations, db.demotions());
  }
  if (learn && !db_path.empty()) {
    server.save_route_db();
    std::printf("route db: saved %s\n", db_path.c_str());
  }

  if (failed > 0) {
    std::printf("SMOKE FAIL: %d request(s) did not converge\n", failed);
    return 1;
  }
  std::printf("SMOKE OK: all %lld requests converged\n", st.requests);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tealeaf::Args args(argc, argv);
  try {
    return run(args);
  } catch (const tealeaf::TeaError& e) {
    std::fprintf(stderr, "solve_server error: %s\n", e.what());
    return 1;
  }
}
