// Solve-server mode: feed a stream of SolveRequests through the batched
// many-solve engine and report service metrics — throughput, latency
// quantiles, session-cache reuse and the one-shot breakdown re-route.
//
// The stream mixes two problem shapes (so same-shape requests coalesce
// into sub-team batches while the shapes keep separate session pools),
// a sprinkling of mixed-precision requests (fp32 inner solves under the
// fp64 refinement guard, served solo from precision-keyed sessions), one
// Matrix-Market-backed request (the example writes a small 5-point SPD
// system and solves it through the assembled CSR path), and, unless
// --no-poison, one mixed-precision request carrying a stale eigenvalue
// hint that deterministically breaks down and must be re-routed —
// keeping its precision — to complete.
//
// Run:  ./examples/solve_server [--requests 20] [--mesh 48] [--mesh2 64]
//           [--ranks 2] [--batch 8] [--routes sweep.json] [--no-poison]
//           [--mtx server_smoke.mtx]
//
// Exits non-zero if any request fails to converge — the CI server-smoke
// job runs exactly this binary.

#include <cstdio>
#include <string>
#include <vector>

#include "driver/decks.hpp"
#include "io/matrix_market.hpp"
#include "server/routing.hpp"
#include "server/solve_server.hpp"
#include "util/args.hpp"
#include "util/error.hpp"

namespace {

/// Write a 5-point SPD system (2-D Laplacian + identity on an n × n
/// grid) as a Matrix Market file and return a single-rank request that
/// solves it through the assembled CSR path.
tealeaf::SolveRequest make_mtx_request(int n, const std::string& path) {
  using namespace tealeaf;
  io::TripletMatrix m;
  m.n = static_cast<std::int64_t>(n) * n;
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const std::int64_t row = static_cast<std::int64_t>(k) * n + j;
      m.entries.push_back({row, row, 5.0});
      if (j > 0) m.entries.push_back({row, row - 1, -1.0});
      if (j < n - 1) m.entries.push_back({row, row + 1, -1.0});
      if (k > 0) m.entries.push_back({row, row - n, -1.0});
      if (k < n - 1) m.entries.push_back({row, row + n, -1.0});
    }
  }
  io::save_matrix_market(path, m);

  SolveRequest req;
  req.deck.x_cells = n;
  req.deck.y_cells = n;
  req.deck.end_step = 1;
  req.deck.matrix_file = path;
  req.deck.solver.type = SolverType::kCG;
  req.deck.solver.op = OperatorKind::kCsr;
  req.deck.states.push_back({});  // unit background: u0 = 1 per row
  req.deck.validate();
  req.nranks = 1;  // loaded operators cover the undecomposed mesh
  req.tag = "req-mtx";
  return req;
}

int run(const tealeaf::Args& args) {
  using namespace tealeaf;
  const int requests = args.get_int("requests", 20);
  const int mesh = args.get_int("mesh", 48);
  const int mesh2 = args.get_int("mesh2", 64);
  const int ranks = args.get_int("ranks", 2);
  const bool poison = !args.has("no-poison");

  ServerOptions opts;
  opts.max_batch = args.get_int("batch", 8);
  const std::string routes = args.get("routes", "");
  if (!routes.empty()) {
    opts.routes = RoutingTable::from_json_file(routes);
    std::printf("routing table: %zu measured cells (swept on %d ranks)\n",
                opts.routes.size(), opts.routes.sweep_ranks());
  }
  SolveServer server(std::move(opts));

  // Mixed-shape stream: two meshes interleaved 2:1, so drain() coalesces
  // each shape into batches while exercising the shape-keyed cache.
  for (int i = 0; i < requests; ++i) {
    SolveRequest req;
    req.deck = decks::layered_material(i % 3 == 2 ? mesh2 : mesh, 1);
    req.nranks = ranks;
    req.tag = "req-" + std::to_string(i);
    if (i % 5 == 3) {
      // Mixed-precision rider: fp32 inner solves inside the fp64
      // iterative-refinement guard, to the same eps as the fp64 stream.
      // Precision is part of the session shape key, so these never share
      // (or poison the eigen memos of) the fp64 sessions beside them.
      req.deck.solver.precision = Precision::kMixed;
      req.tag += "-mixed";
    }
    if (poison && i == requests / 2) {
      // A stale eigenvalue estimate: below-spectrum interval with an odd
      // inner-step count makes the polynomial preconditioner indefinite —
      // deterministic rz-breakdown, completed only by the re-route.  The
      // request also asks for mixed precision: the breakdown surfaces
      // from the fp32 inner solve and the re-route strips the hints while
      // KEEPING the precision (the session is keyed on it).
      SolverConfig bad = req.deck.solver;
      bad.type = SolverType::kPPCG;
      bad.inner_steps = 3;
      bad.eig_hint_min = 0.1;
      bad.eig_hint_max = 0.2;
      bad.precision = Precision::kMixed;
      req.config = bad;
      req.tag += "-stale-hint-mixed";
    }
    server.submit(std::move(req));
  }
  // One assembled-operator request rides along: a Matrix Market system
  // the example writes itself, routed onto the CSR path.
  server.submit(
      make_mtx_request(16, args.get("mtx", "server_smoke.mtx")));

  const std::vector<SolveResult> results = server.drain();

  int failed = 0;
  for (const SolveResult& r : results) {
    const std::string refines =
        r.config.precision == Precision::kMixed
            ? " refine=" + std::to_string(r.stats.refine_steps)
            : "";
    std::printf("%-24s %-28s outer=%4d |r|=%9.2e %8.3f ms%s%s%s%s%s\n",
                r.tag.c_str(),
                r.route_label.empty() ? "(deck config)"
                                      : r.route_label.c_str(),
                r.stats.outer_iters, r.stats.final_norm,
                r.latency_seconds * 1e3, refines.c_str(),
                r.batched ? " [batched]" : "",
                r.cache_hit ? " [cache]" : "",
                r.rerouted ? " [re-routed]" : "",
                r.ok() ? "" : "  FAILED");
    if (!r.ok()) ++failed;
  }

  const ServerStats& st = server.stats();
  std::printf(
      "\nserver: %lld requests in %lld batches (%lld coalesced), "
      "%.1f requests/s\n",
      st.requests, st.batches, st.batched_requests, st.throughput());
  std::printf("latency: p50 %.3f ms, p99 %.3f ms\n", st.p50() * 1e3,
              st.p99() * 1e3);
  std::printf("sessions: %zu live across %zu shapes, %lld hits / %lld "
              "misses\n",
              server.sessions().size(), server.sessions().shapes(),
              st.cache_hits, st.cache_misses);
  std::printf("re-routes: %lld, failures: %lld\n", st.reroutes, st.failures);

  if (failed > 0) {
    std::printf("SMOKE FAIL: %d request(s) did not converge\n", failed);
    return 1;
  }
  std::printf("SMOKE OK: all %lld requests converged\n", st.requests);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tealeaf::Args args(argc, argv);
  try {
    return run(args);
  } catch (const tealeaf::TeaError& e) {
    std::fprintf(stderr, "solve_server error: %s\n", e.what());
    return 1;
  }
}
