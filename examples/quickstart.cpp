// Quickstart: the five-minute tour of the TeaLeaf++ public API.
//
//   1. describe a problem with an InputDeck (or load a tea.in file),
//   2. open a SolveSession — the handle that owns the simulated cluster
//      and performs one implicit conduction step per solve(),
//   3. inspect solver statistics and field summaries.
//
// (TeaLeafApp still exists as a construct-and-run() facade over the same
// session; this tour uses the session directly.)
//
// Build & run:  ./examples/quickstart [--mesh 64] [--ranks 4] [--steps 5]

#include <cstdio>

#include "api/solve_api.hpp"
#include "driver/decks.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  const tealeaf::Args args(argc, argv);
  const int n = args.get_int("mesh", 64);
  const int ranks = args.get_int("ranks", 4);
  const int steps = args.get_int("steps", 5);

  // A ready-made deck: layered material with a circular inclusion.  See
  // decks.hpp for the others, or InputDeck::parse for tea.in files.
  tealeaf::InputDeck deck = tealeaf::decks::layered_material(n, steps);
  deck.solver.type = tealeaf::SolverType::kPPCG;
  deck.solver.precon = tealeaf::PreconType::kNone;
  deck.solver.inner_steps = 10;
  deck.solver.halo_depth = 4;  // matrix-powers: exchange every 4 inner steps

  std::printf("TeaLeaf++ quickstart: %dx%d mesh on %d simulated ranks\n", n,
              n, ranks);
  tealeaf::SolveSession session(deck, ranks);

  const tealeaf::FieldSummary initial = session.field_summary();
  std::printf("initial: volume=%.3f mass=%.3f ie=%.6f avg_temp=%.6f\n",
              initial.volume, initial.mass, initial.ie,
              initial.avg_temp());

  for (int s = 0; s < steps; ++s) {
    const tealeaf::SolveStats st = session.solve();
    std::printf(
        "step %2d  t=%5.2fus  outer=%4d  inner=%5lld  spmv=%5lld  "
        "|r|=%9.2e  %s\n",
        session.solves_taken(), session.sim_time(), st.outer_iters,
        st.inner_steps, st.spmv_applies, st.final_norm,
        st.converged ? "converged" : "NOT CONVERGED");
  }

  const tealeaf::FieldSummary final = session.field_summary();
  std::printf("final:   volume=%.3f mass=%.3f ie=%.6f avg_temp=%.6f\n",
              final.volume, final.mass, final.ie, final.avg_temp());
  std::printf("energy conservation drift: %.3e (should be ~1e-10)\n",
              (final.ie - initial.ie) / initial.ie);

  const auto& stats = session.cluster().stats();
  std::printf(
      "communication: %lld halo exchanges, %lld messages, %.2f MB, "
      "%lld reductions\n",
      static_cast<long long>(stats.exchange_calls),
      static_cast<long long>(stats.messages),
      static_cast<double>(stats.message_bytes) / 1.0e6,
      static_cast<long long>(stats.reductions));
  return 0;
}
