// Design-space exploration in miniature (the paper's purpose for
// TeaLeaf): run the same diffusion problem with every solver and
// preconditioner combination and compare iterations, operator
// applications and — crucially — global reductions.
//
// Every case runs through ONE SolveSession: the problem shape never
// changes, so the cluster allocation is built once and reset() re-seeds
// the fields per case — the same reuse the solve server's shape cache
// performs at scale.
//
// Run:  ./examples/solver_comparison [--mesh 96] [--ranks 4]

#include <cstdio>

#include "api/solve_api.hpp"
#include "driver/decks.hpp"
#include "util/args.hpp"

namespace {

void run_case(tealeaf::SolveSession& session, const tealeaf::InputDeck& base,
              const char* label, tealeaf::SolverType type,
              tealeaf::PreconType precon, int halo_depth) {
  tealeaf::SolverConfig cfg = base.solver;
  cfg.type = type;
  cfg.precon = precon;
  cfg.halo_depth = halo_depth;
  cfg.max_iters = 200000;
  session.reset(base);
  session.cluster().reset_stats();
  const tealeaf::SolveStats st = session.solve(cfg);
  const auto& cs = session.cluster().stats();
  std::printf("%-24s %7d %9lld %11lld %10lld %10lld  %s\n", label,
              st.outer_iters, st.spmv_applies,
              static_cast<long long>(cs.reductions),
              static_cast<long long>(cs.exchange_calls),
              static_cast<long long>(cs.message_bytes / 1024),
              st.converged ? "ok" : "FAILED");
}

}  // namespace

int main(int argc, char** argv) {
  const tealeaf::Args args(argc, argv);
  const int n = args.get_int("mesh", 96);
  const int ranks = args.get_int("ranks", 4);

  const tealeaf::InputDeck base = tealeaf::decks::layered_material(n, 1);
  std::printf("one timestep of the layered-material problem, %dx%d, %d "
              "ranks\n\n", n, n, ranks);
  std::printf("%-24s %7s %9s %11s %10s %10s\n", "solver", "iters", "spmv",
              "reductions", "exchanges", "KB moved");

  using tealeaf::PreconType;
  using tealeaf::SolverType;
  // One session, halo sized for the deepest matrix-powers case below.
  tealeaf::SolveSession session(base, ranks, /*halo_override=*/16);
  run_case(session, base, "jacobi", SolverType::kJacobi, PreconType::kNone,
           1);
  run_case(session, base, "cg", SolverType::kCG, PreconType::kNone, 1);
  run_case(session, base, "cg + diag", SolverType::kCG,
           PreconType::kJacobiDiag, 1);
  run_case(session, base, "cg + block", SolverType::kCG,
           PreconType::kJacobiBlock, 1);
  run_case(session, base, "chebyshev", SolverType::kChebyshev,
           PreconType::kNone, 1);
  run_case(session, base, "ppcg - 1", SolverType::kPPCG, PreconType::kNone,
           1);
  run_case(session, base, "ppcg - 4", SolverType::kPPCG, PreconType::kNone,
           4);
  run_case(session, base, "ppcg - 8", SolverType::kPPCG, PreconType::kNone,
           8);
  run_case(session, base, "ppcg - 16 (GPU sweet spot)", SolverType::kPPCG,
           PreconType::kNone, 16);

  std::printf(
      "\nNote how PPCG cuts reductions by ~inner_steps× versus CG, and\n"
      "deeper matrix-powers halos cut exchange rounds at the same maths.\n");
  return 0;
}
