// Design-space exploration in miniature (the paper's purpose for
// TeaLeaf): run the same diffusion problem with every solver and
// preconditioner combination and compare iterations, operator
// applications and — crucially — global reductions.
//
// Run:  ./examples/solver_comparison [--mesh 96] [--ranks 4]

#include <cstdio>

#include "driver/decks.hpp"
#include "driver/tealeaf_app.hpp"
#include "util/args.hpp"

namespace {

void run_case(const tealeaf::InputDeck& base, int ranks, const char* label,
              tealeaf::SolverType type, tealeaf::PreconType precon,
              int halo_depth) {
  tealeaf::InputDeck deck = base;
  deck.solver.type = type;
  deck.solver.precon = precon;
  deck.solver.halo_depth = halo_depth;
  deck.solver.max_iters = 200000;
  tealeaf::TeaLeafApp app(deck, ranks);
  const tealeaf::SolveStats st = app.step();
  const auto& cs = app.cluster().stats();
  std::printf("%-24s %7d %9lld %11lld %10lld %10lld  %s\n", label,
              st.outer_iters, st.spmv_applies,
              static_cast<long long>(cs.reductions),
              static_cast<long long>(cs.exchange_calls),
              static_cast<long long>(cs.message_bytes / 1024),
              st.converged ? "ok" : "FAILED");
}

}  // namespace

int main(int argc, char** argv) {
  const tealeaf::Args args(argc, argv);
  const int n = args.get_int("mesh", 96);
  const int ranks = args.get_int("ranks", 4);

  const tealeaf::InputDeck base = tealeaf::decks::layered_material(n, 1);
  std::printf("one timestep of the layered-material problem, %dx%d, %d "
              "ranks\n\n", n, n, ranks);
  std::printf("%-24s %7s %9s %11s %10s %10s\n", "solver", "iters", "spmv",
              "reductions", "exchanges", "KB moved");

  using tealeaf::PreconType;
  using tealeaf::SolverType;
  run_case(base, ranks, "jacobi", SolverType::kJacobi, PreconType::kNone, 1);
  run_case(base, ranks, "cg", SolverType::kCG, PreconType::kNone, 1);
  run_case(base, ranks, "cg + diag", SolverType::kCG,
           PreconType::kJacobiDiag, 1);
  run_case(base, ranks, "cg + block", SolverType::kCG,
           PreconType::kJacobiBlock, 1);
  run_case(base, ranks, "chebyshev", SolverType::kChebyshev,
           PreconType::kNone, 1);
  run_case(base, ranks, "ppcg - 1", SolverType::kPPCG, PreconType::kNone, 1);
  run_case(base, ranks, "ppcg - 4", SolverType::kPPCG, PreconType::kNone, 4);
  run_case(base, ranks, "ppcg - 8", SolverType::kPPCG, PreconType::kNone, 8);
  run_case(base, ranks, "ppcg - 16 (GPU sweet spot)", SolverType::kPPCG,
           PreconType::kNone, 16);

  std::printf(
      "\nNote how PPCG cuts reductions by ~inner_steps× versus CG, and\n"
      "deeper matrix-powers halos cut exchange rounds at the same maths.\n");
  return 0;
}
