// The paper's evaluation problem (§V-B, Fig. 3): heat racing down a
// crooked pipe of high-conduction material embedded in a dense slab.
// Writes a PPM heat map and a VTK dump of the final temperature field.
//
// Run:  ./examples/crooked_pipe [--mesh 200] [--ranks 4] [--steps 40]
//       [--out crooked_pipe.ppm] [--vtk crooked_pipe.vtk]

#include <cstdio>

#include "comm/gather.hpp"
#include "driver/decks.hpp"
#include "driver/tealeaf_app.hpp"
#include "io/ppm.hpp"
#include "io/vtk.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  const tealeaf::Args args(argc, argv);
  const int n = args.get_int("mesh", 200);
  const int ranks = args.get_int("ranks", 4);
  const int steps = args.get_int("steps", 40);
  const std::string out = args.get("out", "crooked_pipe.ppm");
  const std::string vtk = args.get("vtk", "");

  tealeaf::InputDeck deck = tealeaf::decks::crooked_pipe(n, steps);
  deck.solver.type = tealeaf::SolverType::kPPCG;
  deck.solver.inner_steps = 10;
  deck.solver.halo_depth = 4;
  deck.solver.eps = 1e-8;

  std::printf("crooked pipe: %dx%d, %d steps of dt=%.3fus on %d ranks\n", n,
              n, steps, deck.initial_timestep, ranks);
  tealeaf::TeaLeafApp app(deck, ranks);
  const tealeaf::RunResult rr = app.run();
  std::printf("ran %d steps to t=%.2fus in %.2fs (%lld outer iters, %s)\n",
              rr.steps, rr.sim_time, rr.wall_seconds, rr.total_outer_iters,
              rr.all_converged ? "all converged" : "NOT all converged");
  std::printf("average temperature: %.6f\n", rr.final_summary.avg_temp());

  const tealeaf::Field2D<double> u =
      tealeaf::gather_field(app.cluster(), tealeaf::FieldId::kU);
  tealeaf::io::write_ppm(u, out);
  std::printf("wrote %s\n", out.c_str());
  if (!vtk.empty()) {
    const tealeaf::Field2D<double> rho =
        tealeaf::gather_field(app.cluster(), tealeaf::FieldId::kDensity);
    tealeaf::io::write_vtk(
        tealeaf::GlobalMesh2D(n, n, deck.xmin, deck.xmax, deck.ymin,
                              deck.ymax),
        {{"temperature", &u}, {"density", &rho}}, vtk);
    std::printf("wrote %s\n", vtk.c_str());
  }
  return 0;
}
