// The paper's purpose, as one command: sweep the solver design space
// (solver × preconditioner × matrix-powers depth × mesh size × threads ×
// execution engine × tile height) over a deck and emit a ranked result
// table as CSV + JSON.
//
// Run:  ./examples/design_space_sweep [--mesh 48] [--ranks 4] [--steps 1]
//           [--solvers cg,ppcg,chebyshev,mg-pcg] [--precons none,jac_diag]
//           [--depths 1,4] [--meshes 32,48] [--threads 0] [--fused 0,1]
//           [--tiles 0,32] [--pipeline 0,1] [--geometry 2d,3d]
//           [--operators stencil,csr,sell-c-sigma]
//           [--precisions double,single,mixed] [--deck path/to/tea.in]
//           [--csv out.csv] [--json out.json] [--route-db route_db.json]
//
// --route-db additionally emits a RouteDatabase seed: every converged
// cell becomes one observation priming a solve server's online routing
// statistics (the nightly sweep uploads these as artifacts).
//
// A deck passed via --deck that carries its own sweep_* section overrides
// the axis flags — sweeps are declarative deck content first.

#include <cstdio>
#include <fstream>

#include "util/error.hpp"

#include "driver/decks.hpp"
#include "driver/sweep.hpp"
#include "model/scaling.hpp"
#include "server/routing.hpp"
#include "util/args.hpp"

namespace {

using namespace tealeaf;

int run(const Args& args);

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  try {
    return run(args);
  } catch (const TeaError& e) {
    std::fprintf(stderr, "sweep error: %s\n", e.what());
    return 1;
  }
}

namespace {

int run(const Args& args) {

  InputDeck base;
  const std::string deck_path = args.get("deck", "");
  if (!deck_path.empty()) {
    std::ifstream in(deck_path);
    if (!in.is_open()) {
      std::fprintf(stderr, "cannot open deck: %s\n", deck_path.c_str());
      return 1;
    }
    base = InputDeck::parse(in);
  } else {
    base = decks::layered_material(args.get_int("mesh", 48), 1);
    base.solver.eps = 1e-8;
  }

  SweepSpec spec = base.sweep;
  if (!spec.requested()) {
    spec.solvers = split_list(
        args.get("solvers", "cg,ppcg,chebyshev,mg-pcg"), "--solvers");
    spec.precons.clear();
    for (const std::string& p :
         split_list(args.get("precons", "none,jac_diag"), "--precons")) {
      spec.precons.push_back(precon_type_from_string(p));
    }
    spec.halo_depths = split_int_list(args.get("depths", "1,4"), "--depths");
    spec.mesh_sizes = split_int_list(
        args.get("meshes", std::to_string(base.x_cells) + ",32"), "--meshes");
    spec.thread_counts = split_int_list(args.get("threads", "0"),
                                        "--threads");
    spec.fused = split_int_list(args.get("fused", "0,1"), "--fused");
    spec.tile_rows = split_int_list(args.get("tiles", "0"), "--tiles");
    spec.pipeline = split_int_list(args.get("pipeline", "0"), "--pipeline");
    spec.geometries.clear();  // empty = inherit the deck's geometry
    if (args.has("geometry")) {
      for (const std::string& g :
           split_list(args.get("geometry", "2d"), "--geometry")) {
        if (g == "2d") {
          spec.geometries.push_back(2);
        } else if (g == "3d") {
          spec.geometries.push_back(3);
        } else {
          throw TeaError("--geometry entries must be '2d' or '3d', got '" +
                         g + "'");
        }
      }
    }
    spec.operators = split_list(args.get("operators", "stencil"),
                                "--operators");
    spec.precisions = split_list(args.get("precisions", "double"),
                                 "--precisions");
    spec.ranks = args.get_int("ranks", 4);
  }

  spec.validate();  // reject bad axes before any output

  SweepOptions opts;
  opts.steps = args.get_int("steps", 1);
  opts.echo = true;

  std::printf("design-space sweep: %zu cells (%zu solvers x %zu precons x "
              "%zu depths x %zu meshes x %zu thread counts x %zu engines x "
              "%zu tile heights x %zu geometries x %zu operators x "
              "%zu pipeline modes x %zu precisions), %d ranks\n\n",
              spec.num_cases(), spec.solvers.size(), spec.precons.size(),
              spec.halo_depths.size(),
              spec.mesh_sizes.empty() ? 1 : spec.mesh_sizes.size(),
              spec.thread_counts.size(), spec.fused.size(),
              spec.tile_rows.size(),
              spec.geometries.empty() ? 1 : spec.geometries.size(),
              spec.operators.size(), spec.pipeline.size(),
              spec.precisions.empty() ? 1 : spec.precisions.size(),
              spec.ranks);

  const SweepReport report = run_sweep(base, spec, opts);

  const std::string csv_path = args.get("csv", "design_space_sweep.csv");
  const std::string json_path = args.get("json", "design_space_sweep.json");
  report.write_csv(csv_path);
  report.write_json(json_path);

  // Ranked summary: converged cells fastest-first.
  const std::vector<int> order = report.ranking();
  const std::vector<double> speedup = report.speedups();
  std::printf("\n%-4s %-28s %8s %12s %12s %10s %8s\n", "rank", "config",
              "iters", "final_norm", "seconds", "comm_s", "speedup");
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const SweepOutcome& c = report.cells[order[pos]];
    std::printf("%-4zu %-28s %8d %12.3e %12.6f %10.6f %8.3f\n", pos + 1,
                c.config.label().c_str(), c.iterations, c.final_norm,
                c.solve_seconds, c.comm_seconds, speedup[order[pos]]);
  }

  int skipped = 0, failed = 0;
  for (const SweepOutcome& c : report.cells) {
    skipped += c.skipped ? 1 : 0;
    failed += (!c.skipped && !c.converged) ? 1 : 0;
  }
  std::printf("\n%zu cells: %zu converged, %d failed, %d skipped "
              "(invalid combinations)\n",
              report.cells.size(), order.size(), failed, skipped);

  const int best = report.best();
  if (best < 0) {
    std::printf("no configuration converged\n");
    return 1;
  }
  std::printf("best configuration: %s (%d iterations, %.6f s)\n",
              report.cells[best].config.label().c_str(),
              report.cells[best].iterations,
              report.cells[best].solve_seconds);

  // If the sweep carried a thread axis, report measured strong-scaling
  // efficiency of the best (solver, precon, depth, mesh) point over it.
  if (spec.thread_counts.size() > 1) {
    const SweepCase& bc = report.cells[best].config;
    std::vector<ScalingPoint> points;
    for (const SweepOutcome& c : report.cells) {
      if (c.skipped || !c.converged) continue;
      if (c.config.solver == bc.solver && c.config.precon == bc.precon &&
          c.config.halo_depth == bc.halo_depth &&
          c.config.mesh_n == bc.mesh_n) {
        points.push_back({std::max(1, c.config.threads), c.solve_seconds});
      }
    }
    const ScalingSeries series =
        measured_series(bc.solver + " thread scaling", points);
    const std::vector<double> eff = scaling_efficiency(series);
    std::printf("\nthread scaling of the best configuration:\n");
    for (std::size_t i = 0; i < series.points.size(); ++i) {
      std::printf("  %3d threads  %10.6f s  eff %.2f\n",
                  series.points[i].nodes, series.points[i].seconds, eff[i]);
    }
  }

  std::printf("\nwrote %s and %s\n", csv_path.c_str(), json_path.c_str());

  // Seed database for the solve server's online refinement: each
  // converged cell primes its (shape, route) statistic with one
  // observation at the measured seconds.
  const std::string db_path = args.get("route-db", "");
  if (!db_path.empty()) {
    const RouteDatabase seed =
        RoutingTable::from_sweep(report).seed_database();
    seed.save(db_path);
    std::printf("wrote route-db seed %s (%zu cells over %zu shapes)\n",
                db_path.c_str(), seed.size(), seed.shapes());
  }
  return 0;
}

}  // namespace
